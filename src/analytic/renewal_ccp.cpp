#include "analytic/renewal_ccp.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace adacheck::analytic {

void CcpRenewalParams::validate() const {
  if (interval <= 0.0)
    throw std::invalid_argument("CcpRenewalParams: interval <= 0");
  if (lambda < 0.0) throw std::invalid_argument("CcpRenewalParams: lambda < 0");
  costs.validate();
}

namespace {
double ccp_closed_form(const CcpRenewalParams& params, double t2, double m) {
  const double mu = params.lambda;
  const double T = params.interval;
  const double ts = params.costs.store;
  const double tcp = params.costs.compare;
  const double tr = params.costs.rollback;
  if (mu == 0.0) return m * (t2 + tcp) + ts;  // fault-free straight line
  const double growth = std::expm1(mu * T);         // e^{mu T} - 1
  const double q_complement = -std::expm1(-mu * t2);  // 1 - e^{-mu T2}
  return ts + (t2 + tcp) * growth / q_complement + tr * growth;
}
}  // namespace

double ccp_expected_time(const CcpRenewalParams& params, int m) {
  params.validate();
  if (m < 1) throw std::invalid_argument("ccp_expected_time: m < 1");
  const double md = static_cast<double>(m);
  return ccp_closed_form(params, params.interval / md, md);
}

double ccp_expected_time_continuous(const CcpRenewalParams& params,
                                    double t2) {
  params.validate();
  if (!(t2 > 0.0) || t2 > params.interval) {
    throw std::invalid_argument(
        "ccp_expected_time_continuous: need 0 < T2 <= T");
  }
  return ccp_closed_form(params, t2, params.interval / t2);
}

double ccp_expected_time_recursive(const CcpRenewalParams& params, int m) {
  params.validate();
  if (m < 1) throw std::invalid_argument("m < 1");
  const double md = static_cast<double>(m);
  const double t2 = params.interval / md;
  const double mu = params.lambda;
  const double q = std::exp(-mu * t2);
  const double c = t2 + params.costs.compare;
  // One attempt: succeed (prob q^m) at cost m*c + t_s, or first fault in
  // sub-interval i (prob q^{i-1}(1-q)) at cost i*c + t_r, then retry.
  // R2 = E[attempt] / q^m.
  const double p_success = std::pow(q, md);
  if (p_success <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  double expected_attempt = p_success * (md * c + params.costs.store);
  double q_pow = 1.0;
  for (int i = 1; i <= m; ++i) {
    const double p_i = q_pow * (1.0 - q);
    // The final comparison is part of the atomic CSCP, whose store cost
    // is paid even on mismatch (the simulator's model); the paper's
    // closed form omits this O(t_s * (1-q)) term.
    const double cscp_store = i == m ? params.costs.store : 0.0;
    expected_attempt += p_i * (static_cast<double>(i) * c + cscp_store +
                               params.costs.rollback);
    q_pow *= q;
  }
  return expected_attempt / p_success;
}

}  // namespace adacheck::analytic
