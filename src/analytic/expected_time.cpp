#include "analytic/expected_time.hpp"

#include <cmath>
#include <stdexcept>

#include "analytic/renewal_ccp.hpp"

namespace adacheck::analytic {

void BaselineTaskParams::validate() const {
  if (work <= 0.0) throw std::invalid_argument("BaselineTaskParams: work <= 0");
  if (interval <= 0.0)
    throw std::invalid_argument("BaselineTaskParams: interval <= 0");
  if (lambda < 0.0)
    throw std::invalid_argument("BaselineTaskParams: lambda < 0");
  costs.validate();
}

namespace {
/// Number of full intervals and the length of the trailing partial one.
struct Segmentation {
  int full = 0;
  double tail = 0.0;
};

Segmentation segment(const BaselineTaskParams& p) {
  const double n_real = p.work / p.interval;
  int full = static_cast<int>(std::floor(n_real));
  double tail = p.work - static_cast<double>(full) * p.interval;
  constexpr double kEps = 1e-9;
  if (tail < kEps * p.interval) tail = 0.0;  // work divides evenly
  return {full, tail};
}
}  // namespace

double fault_free_time(const BaselineTaskParams& params) {
  params.validate();
  const auto seg = segment(params);
  const int checkpoints = seg.full + (seg.tail > 0.0 ? 1 : 0);
  return params.work + static_cast<double>(checkpoints) * params.costs.cscp();
}

double expected_time(const BaselineTaskParams& params) {
  params.validate();
  const auto seg = segment(params);
  // Each interval is a single-sub-interval renewal (m = 1): pay the
  // interval + CSCP; on fault (detected at the CSCP) retry the interval.
  CcpRenewalParams one;
  one.lambda = params.lambda;
  one.costs = params.costs;
  double total = 0.0;
  if (seg.full > 0) {
    one.interval = params.interval;
    total += static_cast<double>(seg.full) * ccp_expected_time(one, 1);
  }
  if (seg.tail > 0.0) {
    one.interval = seg.tail;
    total += ccp_expected_time(one, 1);
  }
  return total;
}

double expected_rollbacks(const BaselineTaskParams& params) {
  params.validate();
  const auto seg = segment(params);
  const double mu = params.lambda;
  // Geometric retries per interval: expected attempts = e^{mu*L}, so
  // rollbacks per interval = e^{mu*L} - 1.
  double total = 0.0;
  if (seg.full > 0) {
    total += static_cast<double>(seg.full) * std::expm1(mu * params.interval);
  }
  if (seg.tail > 0.0) total += std::expm1(mu * seg.tail);
  return total;
}

}  // namespace adacheck::analytic
