// The paper's Fig. 2 procedure: choose the number m of sub-intervals
// (i.e. m-1 additional SCPs or CCPs) inside a CSCP interval of length T
// that minimizes the renewal expected time R1(m) / R2(m).
//
// Fig. 2 first finds the continuous minimizer T1~ of R1 over (0, T]
// (we use golden-section search — both R1 and R2 are unimodal in the
// sub-interval length: cost explodes at T1 -> 0 from per-checkpoint
// overhead and grows at T1 -> T from re-execution exposure), then
// rounds m = T/T1~ to the better of floor/ceil.  num_*_exhaustive scans
// integers directly and is used to validate the rounding heuristic.
#pragma once

#include "analytic/renewal_ccp.hpp"
#include "analytic/renewal_scp.hpp"

namespace adacheck::analytic {

/// Caps the largest m considered; sub-intervals shorter than the
/// cheapest checkpoint operation are never useful.
int max_sub_intervals(double interval, const model::CheckpointCosts& costs);

/// Fig. 2 for SCPs: returns m >= 1 minimizing R1(m).
int num_scp(const ScpRenewalParams& params);

/// Fig. 2 analogue for CCPs: returns m >= 1 minimizing R2(m).
int num_ccp(const CcpRenewalParams& params);

/// Exhaustive integer argmin over [1, max_sub_intervals] — ground truth
/// for tests and the ablation bench.
int num_scp_exhaustive(const ScpRenewalParams& params);
int num_ccp_exhaustive(const CcpRenewalParams& params);

}  // namespace adacheck::analytic
