#include "analytic/interval_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analytic/intervals.hpp"

namespace adacheck::analytic {

const char* to_string(IntervalRule rule) noexcept {
  switch (rule) {
    case IntervalRule::kDeadlinePressure: return "I3-deadline";
    case IntervalRule::kExpectedFaults: return "I2-expected";
    case IntervalRule::kFaultGuarantee: return "I2-guarantee";
    case IntervalRule::kPoisson: return "I1-poisson";
  }
  return "?";
}

IntervalDecision adaptive_interval(double remaining_deadline,
                                   double remaining_work,
                                   double checkpoint_cost,
                                   int remaining_faults, double lambda) {
  if (remaining_work <= 0.0) {
    throw std::invalid_argument("adaptive_interval: remaining work <= 0");
  }
  if (lambda < 0.0) {
    throw std::invalid_argument("adaptive_interval: lambda < 0");
  }
  const int rf = std::max(remaining_faults, 0);  // budget may be exhausted
  const double exp_faults = lambda * remaining_work;  // Fig. 4 line 1

  if (exp_faults <= static_cast<double>(rf)) {
    // k-fault-tolerant requirement is the more stringent one.
    if (remaining_work >
        poisson_threshold(remaining_deadline, lambda, checkpoint_cost)) {
      return {deadline_interval(remaining_work, remaining_deadline,
                                checkpoint_cost),
              IntervalRule::kDeadlinePressure};
    }
    if (remaining_work >
        k_fault_threshold(remaining_deadline, rf, checkpoint_cost)) {
      // Fig. 4 line 6 uses the *expected* number of faults; it can be
      // fractional, so we evaluate I2 with the real-valued count.
      const double k_eff = std::max(exp_faults, 1e-12);
      return {std::sqrt(remaining_work * checkpoint_cost / k_eff),
              IntervalRule::kExpectedFaults};
    }
    return {k_fault_interval(remaining_work, rf, checkpoint_cost),
            IntervalRule::kFaultGuarantee};
  }
  // Poisson-arrival criterion is the more stringent one.
  if (remaining_work >
      poisson_threshold(remaining_deadline, lambda, checkpoint_cost)) {
    return {deadline_interval(remaining_work, remaining_deadline,
                              checkpoint_cost),
            IntervalRule::kDeadlinePressure};
  }
  return {poisson_interval(checkpoint_cost, lambda), IntervalRule::kPoisson};
}

}  // namespace adacheck::analytic
