// Renewal-equation models for the TMR (triple modular redundancy)
// extension — the "other task duplication systems" the paper names as
// future work, following Nakagawa/Fukumoto (the paper's ref [5]), who
// analyze optimal checkpoint intervals for both DMR and TMR.
//
// With three replicas a comparison that sees exactly one deviant state
// majority-votes it back to health at cost t_r, losing no work; a
// rollback is needed only when two or more *distinct* replicas are
// corrupted between consistency points (no majority survives).  Faults
// arrive to the system at rate lambda, striking a uniformly random
// replica, so with x = lambda * w faults expected in a window w:
//   P(clean)                = e^{-x}
//   P(single replica hit)   = 3*(e^{-2x/3} - e^{-x})   (>=1 fault, all same)
//   P(majority lost)        = 1 - the above two.
//
// CCP mode: comparisons close every sub-interval, so corruption cannot
// span windows; each sub-interval independently either passes, votes
// (cost t_r), or forces a rollback to the interval-start CSCP.
//
// SCP mode: no comparison until the CSCP, so corruption accumulates
// across sub-intervals; the per-attempt replica state follows a Markov
// chain over {0 corrupt, 1 corrupt, majority lost}.  On majority loss
// at sub-interval j (the first sub where a second distinct replica was
// hit), recovery rolls back to SCP j-1, which still holds a 2-of-3
// majority; the prefix is committed.
#pragma once

#include "model/checkpoint.hpp"

namespace adacheck::analytic {

struct TmrRenewalParams {
  double interval = 0.0;  ///< T: CSCP interval computation length.
  double lambda = 0.0;    ///< system-level fault rate.
  model::CheckpointCosts costs;

  void validate() const;
};

/// Window outcome probabilities for exposure x = lambda * window.
struct TmrWindowOdds {
  double clean = 1.0;
  double single = 0.0;   ///< >=1 fault, all on one replica (votable)
  double majority_lost = 0.0;
};
TmrWindowOdds tmr_window_odds(double expected_faults);

/// Expected completion time of one CSCP interval with m sub-intervals
/// ending in CCP comparisons (TMR semantics).  m >= 1.
double tmr_ccp_expected_time(const TmrRenewalParams& params, int m);

/// Expected completion time with m sub-intervals ending in SCP stores
/// (TMR semantics, detection at the CSCP only).  m >= 1.
double tmr_scp_expected_time(const TmrRenewalParams& params, int m);

/// Integer argmin of the corresponding expected time over m.
int num_scp_tmr(const TmrRenewalParams& params);
int num_ccp_tmr(const TmrRenewalParams& params);

}  // namespace adacheck::analytic
