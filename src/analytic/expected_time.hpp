// Whole-task expected / worst-case completion-time analytics for the
// fixed-interval baseline schemes.  Used by feasibility pre-checks in
// the examples, by tests, and for documentation tables — the simulator
// remains the ground truth for the experiments.
#pragma once

#include "model/checkpoint.hpp"

namespace adacheck::analytic {

struct BaselineTaskParams {
  double work = 0.0;            ///< total computation time at this speed.
  double interval = 0.0;        ///< constant checkpoint interval (time).
  double lambda = 0.0;          ///< per-processor fault rate.
  model::CheckpointCosts costs; ///< cscp() is the per-checkpoint cost.

  void validate() const;
};

/// Fault-free completion time with equidistant CSCPs every `interval`:
/// work + ceil(work/interval) * cscp_cost (the final checkpoint is
/// placed at task end, as all schemes in the paper do).
double fault_free_time(const BaselineTaskParams& params);

/// Expected completion time under the DMR renewal model: each interval
/// behaves like an independent CCP-style renewal with m = 1 (detection
/// at the interval-end CSCP, retry from the interval start).
double expected_time(const BaselineTaskParams& params);

/// Expected number of rollbacks until completion (sum over intervals of
/// e^{2*lambda*interval} - 1 style retry counts).
double expected_rollbacks(const BaselineTaskParams& params);

}  // namespace adacheck::analytic
