// The adaptive checkpoint-interval procedure of the paper's Fig. 4
// (procedure interval(Rd, Rt, C, Rf, lambda), inherited from Zhang &
// Chakrabarty DATE'03).
//
// The procedure arbitrates between three interval rules based on which
// requirement currently binds:
//  - deadline pressure   (Rt above Th_lambda)        -> I3
//  - expected-fault load (Rt above Th, exp <= Rf)    -> I2 with exp faults
//  - k-fault guarantee   (otherwise, exp <= Rf)      -> I2 with Rf faults
//  - pure Poisson        (exp > Rf, low pressure)    -> I1
#pragma once

namespace adacheck::analytic {

/// Which branch of Fig. 4 produced the interval — exposed for tests and
/// for the harness's decision traces.
enum class IntervalRule {
  kDeadlinePressure,   ///< I3(Rt, Rd, C)
  kExpectedFaults,     ///< I2(Rt, lambda*Rt, C)
  kFaultGuarantee,     ///< I2(Rt, Rf, C)
  kPoisson,            ///< I1(C, lambda)
};

const char* to_string(IntervalRule rule) noexcept;

struct IntervalDecision {
  double interval = 0.0;  ///< chosen checkpoint interval (time units).
  IntervalRule rule = IntervalRule::kPoisson;
};

/// Fig. 4, verbatim control flow.  Arguments use the paper's names:
/// remaining deadline Rd, remaining execution time Rt, checkpoint cost
/// C, remaining fault budget Rf, fault rate lambda — all in the time
/// units of the *current* speed.  The returned interval may be
/// +infinity (checkpointing pointless / impossible deadline); callers
/// clamp it to the remaining work.
IntervalDecision adaptive_interval(double remaining_deadline,
                                   double remaining_work,
                                   double checkpoint_cost,
                                   int remaining_faults, double lambda);

}  // namespace adacheck::analytic
