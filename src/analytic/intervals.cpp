#include "analytic/intervals.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace adacheck::analytic {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

void require_positive_cost(double c) {
  if (!(c > 0.0)) {
    throw std::invalid_argument("checkpoint cost must be > 0");
  }
}
}  // namespace

double poisson_interval(double checkpoint_cost, double lambda) {
  require_positive_cost(checkpoint_cost);
  if (lambda <= 0.0) return kInf;
  return std::sqrt(2.0 * checkpoint_cost / lambda);
}

double k_fault_interval(double work, int k, double checkpoint_cost) {
  require_positive_cost(checkpoint_cost);
  if (work <= 0.0) throw std::invalid_argument("k_fault_interval: work <= 0");
  if (k <= 0) return kInf;
  return std::sqrt(work * checkpoint_cost / static_cast<double>(k));
}

double deadline_interval(double remaining_work, double remaining_deadline,
                         double checkpoint_cost) {
  require_positive_cost(checkpoint_cost);
  if (remaining_work <= 0.0) {
    throw std::invalid_argument("deadline_interval: work <= 0");
  }
  const double slack = remaining_deadline + checkpoint_cost - remaining_work;
  if (slack <= 0.0) return kInf;
  return 2.0 * remaining_work * checkpoint_cost / slack;
}

double poisson_threshold(double remaining_deadline, double lambda,
                         double checkpoint_cost) {
  require_positive_cost(checkpoint_cost);
  if (lambda < 0.0) throw std::invalid_argument("poisson_threshold: lambda < 0");
  return (remaining_deadline + checkpoint_cost) /
         (1.0 + std::sqrt(lambda * checkpoint_cost / 2.0));
}

double k_fault_threshold(double remaining_deadline, int remaining_faults,
                         double checkpoint_cost) {
  require_positive_cost(checkpoint_cost);
  if (remaining_faults < 0) {
    throw std::invalid_argument("k_fault_threshold: k < 0");
  }
  const double a = static_cast<double>(remaining_faults) * checkpoint_cost;
  const double b = remaining_deadline + checkpoint_cost;
  // (sqrt(a+b) - sqrt(a))^2, written in the paper's expanded form.
  return b + 2.0 * a - 2.0 * std::sqrt(a * a + a * b);
}

double k_fault_worst_case(double work, int k, double checkpoint_cost,
                          double rollback_cost) {
  require_positive_cost(checkpoint_cost);
  if (work <= 0.0) throw std::invalid_argument("k_fault_worst_case: work <= 0");
  if (k < 0) throw std::invalid_argument("k_fault_worst_case: k < 0");
  const double kd = static_cast<double>(k);
  // Interval I2 = sqrt(work*C/k); n = work/I2 checkpoints cost n*C =
  // sqrt(k*C*work); each of the k faults redoes at most one interval
  // I2 = sqrt(work*C/k) plus its checkpoint and the rollback:
  // total = work + sqrt(kCw) + k*I2 + k*C + k*t_r
  //       = work + 2*sqrt(kCw) + k*(C + t_r).
  if (k == 0) return work;  // no checkpoints needed in the worst case
  return work + 2.0 * std::sqrt(kd * checkpoint_cost * work) +
         kd * (checkpoint_cost + rollback_cost);
}

}  // namespace adacheck::analytic
