#include "analytic/renewal_tmr.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "analytic/num_checkpoints.hpp"
#include "util/optimize.hpp"

namespace adacheck::analytic {

void TmrRenewalParams::validate() const {
  if (interval <= 0.0)
    throw std::invalid_argument("TmrRenewalParams: interval <= 0");
  if (lambda < 0.0) throw std::invalid_argument("TmrRenewalParams: lambda < 0");
  costs.validate();
}

TmrWindowOdds tmr_window_odds(double expected_faults) {
  if (expected_faults < 0.0) {
    throw std::invalid_argument("tmr_window_odds: negative exposure");
  }
  TmrWindowOdds odds;
  odds.clean = std::exp(-expected_faults);
  // P(>=1 fault, all on one of the three replicas): sum over n>=1 of
  // Pois(n) * 3 * (1/3)^n = 3 (e^{-2x/3} - e^{-x}).
  odds.single =
      3.0 * (std::exp(-2.0 * expected_faults / 3.0) - odds.clean);
  odds.majority_lost = 1.0 - odds.clean - odds.single;
  if (odds.majority_lost < 0.0) odds.majority_lost = 0.0;  // rounding
  return odds;
}

double tmr_ccp_expected_time(const TmrRenewalParams& params, int m) {
  params.validate();
  if (m < 1) throw std::invalid_argument("tmr_ccp_expected_time: m < 1");
  const double md = static_cast<double>(m);
  const double t2 = params.interval / md;
  const double tcp = params.costs.compare;
  const double ts = params.costs.store;
  const double tr = params.costs.rollback;
  const auto odds = tmr_window_odds(params.lambda * t2);
  const double p_fail = odds.majority_lost;
  const double p_pass = 1.0 - p_fail;
  if (p_pass <= 0.0) return std::numeric_limits<double>::infinity();
  // Expected vote-corrections per passed sub-interval.
  const double g = odds.single / p_pass;
  const double c = t2 + tcp;

  double expected_attempt = 0.0;
  double pass_pow = 1.0;  // p_pass^{i-1}
  for (int i = 1; i <= m; ++i) {
    const double di = static_cast<double>(i);
    const double p_i = pass_pow * p_fail;  // majority lost at sub i
    const double cscp_store = i == m ? ts : 0.0;
    expected_attempt +=
        p_i * (di * c + cscp_store + tr + (di - 1.0) * g * tr);
    pass_pow *= p_pass;
  }
  // pass_pow is now p_pass^m: full success.
  expected_attempt += pass_pow * (md * c + ts + md * g * tr);
  return expected_attempt / pass_pow;
}

double tmr_scp_expected_time(const TmrRenewalParams& params, int m) {
  params.validate();
  if (m < 1) throw std::invalid_argument("tmr_scp_expected_time: m < 1");
  const double t1 = params.interval / static_cast<double>(m);
  const double ts = params.costs.store;
  const double tcp = params.costs.compare;
  const double tr = params.costs.rollback;
  const auto odds = tmr_window_odds(params.lambda * t1);
  // Per-window Markov transitions over {0 corrupt, 1 corrupt, lost}.
  const double stay1 = std::exp(-2.0 * params.lambda * t1 / 3.0);

  // pi0[j], pi1[j]: state distribution after j windows (absorbing loss);
  // b[j]: probability the majority is first lost in window j.
  std::vector<double> pi0(static_cast<std::size_t>(m) + 1, 0.0);
  std::vector<double> pi1(static_cast<std::size_t>(m) + 1, 0.0);
  std::vector<double> b(static_cast<std::size_t>(m) + 1, 0.0);
  pi0[0] = 1.0;
  for (int j = 1; j <= m; ++j) {
    const auto js = static_cast<std::size_t>(j);
    pi0[js] = pi0[js - 1] * odds.clean;
    pi1[js] = pi0[js - 1] * odds.single + pi1[js - 1] * stay1;
    b[js] = (pi0[js - 1] + pi1[js - 1]) - (pi0[js] + pi1[js]);
  }

  // G(r): expected time to complete the last r sub-intervals, entering
  // consistent.  Detection happens only at the CSCP, so a failed
  // attempt still pays the full S(r); the prefix before the loss
  // boundary is committed (its SCPs hold a 2-of-3 majority).
  //   G(r) = S(r) + pi1(r)*t_r
  //        + sum_{j=1..r} b_j * (t_r + G(r-j+1)).
  std::vector<double> G(static_cast<std::size_t>(m) + 1, 0.0);
  for (int r = 1; r <= m; ++r) {
    const auto rs = static_cast<std::size_t>(r);
    const double S = static_cast<double>(r) * (t1 + ts) + tcp;
    double rhs = S + pi1[rs] * tr;
    for (int j = 2; j <= r; ++j) {
      const auto js = static_cast<std::size_t>(j);
      rhs += b[js] * (tr + G[static_cast<std::size_t>(r - j + 1)]);
    }
    rhs += b[1] * tr;  // j = 1 term's non-recursive part
    const double denom = 1.0 - b[1];
    if (denom <= 0.0) return std::numeric_limits<double>::infinity();
    G[rs] = rhs / denom;
  }
  return G[static_cast<std::size_t>(m)];
}

int num_scp_tmr(const TmrRenewalParams& params) {
  params.validate();
  const int m_max = max_sub_intervals(params.interval, params.costs);
  const auto best = util::integer_argmin(
      [&](std::int64_t m) {
        return tmr_scp_expected_time(params, static_cast<int>(m));
      },
      1, m_max, /*early_stop_rises=*/8);
  return static_cast<int>(best.x);
}

int num_ccp_tmr(const TmrRenewalParams& params) {
  params.validate();
  const int m_max = max_sub_intervals(params.interval, params.costs);
  const auto best = util::integer_argmin(
      [&](std::int64_t m) {
        return tmr_ccp_expected_time(params, static_cast<int>(m));
      },
      1, m_max, /*early_stop_rises=*/8);
  return static_cast<int>(best.x);
}

}  // namespace adacheck::analytic
