#include "analytic/dvs_estimate.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace adacheck::analytic {

double dvs_time_estimate(double remaining_cycles, double frequency,
                         double checkpoint_cycles, double lambda) {
  if (remaining_cycles < 0.0)
    throw std::invalid_argument("dvs_time_estimate: negative work");
  if (frequency <= 0.0)
    throw std::invalid_argument("dvs_time_estimate: frequency <= 0");
  if (checkpoint_cycles <= 0.0)
    throw std::invalid_argument("dvs_time_estimate: checkpoint cycles <= 0");
  if (lambda < 0.0) throw std::invalid_argument("dvs_time_estimate: lambda < 0");
  const double u = std::sqrt(lambda * checkpoint_cycles / frequency);
  if (u >= 1.0) return std::numeric_limits<double>::infinity();
  return remaining_cycles * (1.0 + u) / (frequency * (1.0 - u));
}

const model::SpeedLevel& choose_speed(const model::DvsProcessor& processor,
                                      double remaining_cycles,
                                      double remaining_deadline,
                                      double checkpoint_cycles, double lambda) {
  for (std::size_t i = 0; i < processor.num_levels(); ++i) {
    const auto& level = processor.level(i);
    const double t_est = dvs_time_estimate(remaining_cycles, level.frequency,
                                           checkpoint_cycles, lambda);
    if (t_est <= remaining_deadline) return level;
  }
  return processor.fastest();
}

}  // namespace adacheck::analytic
