// Renewal-equation model of a CSCP interval with m-1 additional SCPs
// (paper §2.1, eq. (1)).
//
// Semantics being modeled: a CSCP interval of computation length T is
// split into m sub-intervals of length T1 = T/m, each ending with an
// SCP (cost t_s) except the last, which ends with the CSCP
// (cost t_cp + t_s).  Faults (system rate mu = lambda) are detected
// only at the CSCP comparison; recovery rolls back to the last SCP that
// preceded the first fault of the attempt and re-executes from there.
//
// The paper's printed equation (1) is OCR-mangled, so we evaluate the
// exact expectation with a renewal recursion (derived in DESIGN.md §3):
// with q = e^{-lambda*T1}, S(r) = r*(T1 + t_s) + t_cp, and G(r) the
// expected time to complete the last r sub-intervals,
//
//   q*G(r) = S(r) + (1 - q^r)*t_r + (1 - q) * sum_{j=1..r-1} q^j G(r-j),
//
// and R1(m) = G(m).  Limiting cases match the paper exactly:
// R1(1) = (T + t_s + t_cp) * e^{lambda*T}, R1(m -> inf) -> inf.
#pragma once

#include "model/checkpoint.hpp"

namespace adacheck::analytic {

struct ScpRenewalParams {
  double interval = 0.0;      ///< T: CSCP interval computation length.
  double lambda = 0.0;        ///< per-processor fault rate.
  model::CheckpointCosts costs;

  void validate() const;
};

/// Exact expected completion time R1(m) of one CSCP interval with m
/// sub-intervals.  O(m) per call via suffix sums.  m >= 1.
double scp_expected_time(const ScpRenewalParams& params, int m);

/// Continuous relaxation R1(T1) used by the Fig. 2 optimizer: evaluates
/// the recursion at m = T/T1 rounded to the nearest integer >= 1, with
/// the interval rescaled so sub-intervals have exactly length T1 where
/// possible.  Defined for 0 < T1 <= T.
double scp_expected_time_continuous(const ScpRenewalParams& params, double t1);

/// First-order closed-form approximation of R1(m) for small fault
/// probability per interval (used as a cross-check and in docs):
/// R1(m) ~ S(m) + (1 - q^m)*(t_r + expected re-execution).  Exposed for
/// tests that verify the recursion's asymptotics.
double scp_expected_time_first_order(const ScpRenewalParams& params, int m);

}  // namespace adacheck::analytic
