// Closed-form checkpoint-interval rules and feasibility thresholds
// (paper §2, reconstructed from Zhang & Chakrabarty DATE'03, the
// paper's ref [3]; derivations in DESIGN.md §3).
//
// All quantities are in time units at the current speed; C is the
// per-checkpoint overhead in the same units.
#pragma once

namespace adacheck::analytic {

/// I1: Poisson-arrival interval sqrt(2C/lambda) (Duda).  Minimizes the
/// expected execution time under Poisson faults with no deadline
/// pressure.  lambda <= 0 yields +infinity (never checkpoint).
double poisson_interval(double checkpoint_cost, double lambda);

/// I2: k-fault-tolerant interval sqrt(N*C/k).  Minimizes the worst-case
/// execution time of N work units when up to k faults must be absorbed.
/// k <= 0 yields +infinity.
double k_fault_interval(double work, int k, double checkpoint_cost);

/// I3: deadline-pressure interval 2*R_t*C/(R_d + C - R_t).  Used when
/// remaining work R_t is large relative to the remaining deadline R_d:
/// checkpoints are stretched so overhead still fits the slack.
/// Requires R_d + C > R_t; returns +infinity otherwise (no interval can
/// meet the deadline, so checkpoint as rarely as possible).
double deadline_interval(double remaining_work, double remaining_deadline,
                         double checkpoint_cost);

/// Th_lambda: the largest remaining work R_t for which the Poisson
/// interval I1 still meets the remaining deadline R_d:
/// (R_d + C) / (1 + sqrt(lambda*C/2)).
double poisson_threshold(double remaining_deadline, double lambda,
                         double checkpoint_cost);

/// Th: the largest remaining work R_t whose k-fault worst case
/// R_t + 2*sqrt(R_f*C*R_t) fits within R_d + C:
/// R_d + C + 2*R_f*C - 2*sqrt((R_f*C)^2 + R_f*C*(R_d + C)).
/// Equivalently (sqrt(R_d + C + R_f*C) - sqrt(R_f*C))^2.
double k_fault_threshold(double remaining_deadline, int remaining_faults,
                         double checkpoint_cost);

/// Worst-case completion time of `work` under exactly `k` absorbed
/// faults with interval I2: work + 2*sqrt(k*C*work) + k*C (+ k*t_r).
/// Used by tests to verify the threshold algebra.
double k_fault_worst_case(double work, int k, double checkpoint_cost,
                          double rollback_cost = 0.0);

}  // namespace adacheck::analytic
