#include "analytic/renewal_scp.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace adacheck::analytic {

void ScpRenewalParams::validate() const {
  if (interval <= 0.0)
    throw std::invalid_argument("ScpRenewalParams: interval <= 0");
  if (lambda < 0.0) throw std::invalid_argument("ScpRenewalParams: lambda < 0");
  costs.validate();
}

double scp_expected_time(const ScpRenewalParams& params, int m) {
  params.validate();
  if (m < 1) throw std::invalid_argument("scp_expected_time: m < 1");
  const double T = params.interval;
  const double t1 = T / static_cast<double>(m);
  const double ts = params.costs.store;
  const double tcp = params.costs.compare;
  const double tr = params.costs.rollback;
  const double mu = params.lambda;  // duplex-system fault rate
  const double q = std::exp(-mu * t1);    // P(sub-interval fault-free)

  if (q >= 1.0) {
    // No faults: straight-line cost of m sub-intervals + overheads.
    return T + static_cast<double>(m) * ts + tcp;
  }

  // G[r] = expected time to complete the last r sub-intervals (ending
  // with the CSCP).  q*G(r) = S(r) + (1-q^r)*t_r
  //                           + (1-q)*sum_{j=1..r-1} q^j * G(r-j).
  // Evaluate bottom-up; maintain W(r) = sum_{j=1..r-1} q^j G(r-j)
  // incrementally: W(r+1) = q*(W(r) + q^0*... ) — note
  // W(r+1) = sum_{j=1..r} q^j G(r+1-j) = q * sum_{i=0..r-1} q^i G(r-i)
  //        = q * (G(r) + W(r)).
  std::vector<double> G(static_cast<std::size_t>(m) + 1, 0.0);
  double W = 0.0;  // W(r) for current r
  double q_pow_r = 1.0;
  for (int r = 1; r <= m; ++r) {
    q_pow_r *= q;
    const double S = static_cast<double>(r) * (t1 + ts) + tcp;
    const double rhs = S + (1.0 - q_pow_r) * tr + (1.0 - q) * W;
    G[static_cast<std::size_t>(r)] = rhs / q;
    W = q * (G[static_cast<std::size_t>(r)] + W);
  }
  return G[static_cast<std::size_t>(m)];
}

double scp_expected_time_continuous(const ScpRenewalParams& params,
                                    double t1) {
  params.validate();
  if (!(t1 > 0.0) || t1 > params.interval) {
    throw std::invalid_argument(
        "scp_expected_time_continuous: need 0 < T1 <= T");
  }
  // The recursion is only defined at integer m; interpolate linearly
  // between the bracketing counts so the relaxation is continuous and
  // unimodal-friendly for the golden-section search of Fig. 2.
  const double ratio = params.interval / t1;
  const int m_floor = std::max(1, static_cast<int>(std::floor(ratio)));
  const double frac = std::max(0.0, ratio - static_cast<double>(m_floor));
  const double at_floor = scp_expected_time(params, m_floor);
  if (frac < 1e-12) return at_floor;
  const double at_ceil = scp_expected_time(params, m_floor + 1);
  return (1.0 - frac) * at_floor + frac * at_ceil;
}

double scp_expected_time_first_order(const ScpRenewalParams& params, int m) {
  params.validate();
  if (m < 1) throw std::invalid_argument("m < 1");
  const double T = params.interval;
  const double md = static_cast<double>(m);
  const double t1 = T / md;
  const double mu = params.lambda;
  const double q = std::exp(-mu * t1);
  const double S = T + md * params.costs.store + params.costs.compare;
  // One fault in sub-interval j costs a rollback plus re-execution of
  // the (m - j + 1) trailing sub-intervals and the CSCP; averaging j
  // uniformly (first-order in mu*T) gives (m+1)/2 sub-intervals redone.
  const double p_fault = 1.0 - std::pow(q, md);
  const double redo = 0.5 * (md + 1.0) * (t1 + params.costs.store) +
                      params.costs.compare + params.costs.rollback;
  return S + p_fault * redo;
}

}  // namespace adacheck::analytic
