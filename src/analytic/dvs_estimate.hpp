// Fault-aware completion-time estimation for the DVS decision (paper §3).
//
// For remaining work R_c (cycles) executed at speed f with checkpoint
// cost c cycles and fault rate lambda, the expected completion time
// with checkpointing at the Poisson-optimal interval is estimated as
//
//   t_est(R_c, f) = R_c * (1 + sqrt(lambda*c/f)) / (f * (1 - sqrt(lambda*c/f)))
//
// (infinite when sqrt(lambda*c/f) >= 1: overhead alone outpaces
// progress).  The voltage-scaling decision of Figs. 6/7 line 2/15 runs
// at the low speed iff t_est at the low speed fits the remaining
// deadline.
#pragma once

#include "model/speed.hpp"

namespace adacheck::analytic {

/// t_est as above.  remaining_cycles >= 0; frequency > 0;
/// checkpoint_cycles > 0; lambda >= 0 (lambda = 0 gives R_c / f).
double dvs_time_estimate(double remaining_cycles, double frequency,
                         double checkpoint_cycles, double lambda);

/// The Figs. 6/7 speed decision: the slowest level whose t_est meets
/// the remaining deadline; if none qualifies, the fastest level (the
/// paper's two-speed "else f = f2" generalized to any level count).
const model::SpeedLevel& choose_speed(const model::DvsProcessor& processor,
                                      double remaining_cycles,
                                      double remaining_deadline,
                                      double checkpoint_cycles, double lambda);

}  // namespace adacheck::analytic
