// Renewal-equation model of a CSCP interval with m-1 additional CCPs
// (paper §2.2, eq. (2)).
//
// Semantics: the interval of computation length T is split into m
// sub-intervals of length T2 = T/m, each ending with a CCP comparison
// (cost t_cp) except the last, which ends with the CSCP
// (cost t_cp + t_s, store skipped on mismatch).  A fault is detected at
// the first comparison after it; recovery rolls back to the interval's
// starting CSCP (nothing was stored in between) and the whole interval
// is retried.
//
// Closed form (matches the paper's eq. (2) with the t_r term restored):
// with mu = lambda (system rate), q = e^{-mu*T2}, cost-per-sub-attempt
// c = T2 + t_cp,
//
//   R2(m) = t_s + c * (e^{mu*T} - 1) / (1 - q) + t_r * (e^{mu*T} - 1).
//
// Limiting cases: R2(T2->0) = inf;
// R2(m=1) = t_s + (T + t_cp) * e^{mu*T} (+ t_r*(e^{mu*T}-1)).
#pragma once

#include "model/checkpoint.hpp"

namespace adacheck::analytic {

struct CcpRenewalParams {
  double interval = 0.0;  ///< T: CSCP interval computation length.
  double lambda = 0.0;    ///< per-processor fault rate.
  model::CheckpointCosts costs;

  void validate() const;
};

/// Closed-form expected completion time R2(m), m >= 1.
double ccp_expected_time(const CcpRenewalParams& params, int m);

/// Continuous relaxation R2(T2) for the Fig. 2-style optimizer,
/// 0 < T2 <= T (evaluated without integer rounding — the closed form is
/// well-defined for real m = T/T2).
double ccp_expected_time_continuous(const CcpRenewalParams& params, double t2);

/// Renewal expectation evaluated attempt-by-attempt, modeling the
/// simulator's atomic CSCP (whose store cost is paid even on a failed
/// comparison).  Differs from the paper's closed form by at most
/// t_s * (e^{mu*T} - 1); cross-validates both in tests.
double ccp_expected_time_recursive(const CcpRenewalParams& params, int m);

}  // namespace adacheck::analytic
