// The adacheck-serve-v1 wire protocol.
//
// Newline-delimited JSON in both directions: a client sends one
// request object per line, the server answers with one response object
// per line (the `stream` request additionally interleaves the job's
// raw adacheck-cell-v2 lines, byte-for-byte, between its opening
// response and a closing adacheck-serve-eot-v1 line).
//
// Requests ("req" selects the type; unknown types get a "did you
// mean" suggestion, unknown keys are rejected — same validation
// vocabulary as the scenario schema):
//
//   {"req": "submit", "scenario": {...adacheck-scenario-v1...},
//    "priority": 5, "threads": 2, "source": "label"}   // inline, or
//   {"req": "submit", "path": "scenarios/smoke.json", ...}
//   {"req": "status", "job": 3}
//   {"req": "list"}
//   {"req": "cancel", "job": 3}
//   {"req": "stream", "job": 3, "from": 0}   // byte offset, default 0
//   {"req": "stats"}      // adacheck-stats-v1 telemetry snapshot
//   {"req": "shutdown"}
//
// Responses always carry "schema": "adacheck-serve-v1" and "ok".
// Errors are {"ok": false, "error": MESSAGE [, "job": ID]
// [, "queue_full": true]}; whenever a document was involved the
// message names its source — the submitted path or "job <id>" — so
// multi-job sessions stay debuggable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/job_manager.hpp"
#include "util/json.hpp"

namespace adacheck::serve {

inline constexpr const char* kProtocolSchema = "adacheck-serve-v1";
inline constexpr const char* kEotSchema = "adacheck-serve-eot-v1";

struct Request {
  enum class Type {
    kSubmit,
    kStatus,
    kList,
    kCancel,
    kStream,
    kStats,
    kShutdown
  };
  Type type = Type::kList;

  // submit — exactly one of `document` (inline scenario object) and
  // `path` (server-side file) is set.
  std::optional<util::json::Value> document;
  std::string path;
  int priority = 0;
  int threads = 0;
  std::string source;  ///< client label; defaults to path or "inline"

  // status / cancel / stream
  std::uint64_t job = 0;

  // stream
  std::size_t from = 0;
};

/// "submit" | "status" | ... (the wire names).
const char* to_string(Request::Type type);

/// The request types a serve endpoint understands, in wire spelling
/// (the did-you-mean candidate list).
std::vector<std::string> known_requests();

/// Parses and validates one request line.  Throws
/// scenario::ScenarioError with the offending member's path ("req",
/// "submit.priority", ...) — unknown request types and unknown keys
/// get "did you mean" suggestions — or util::json::ParseError for
/// malformed JSON.
Request parse_request(const std::string& line);

// --- response builders (each returns one '\n'-terminated line) ----------

/// {"schema":...,"ok":false,"error":MESSAGE,...}.  `job` > 0 is
/// included so clients can address the failed document as "job <id>".
std::string error_response(const std::string& message, std::uint64_t job = 0,
                           bool queue_full = false);

/// Submit acknowledgement: {"ok":true,"req":"submit","job":N,
/// "state":...}.
std::string submit_response(std::uint64_t job, JobState state);

/// {"ok":true,"req":"status","job":{...full snapshot...}}.
std::string status_response(const JobInfo& info);

/// {"ok":true,"req":"list","jobs":[{...}, ...]}.
std::string list_response(const std::vector<JobInfo>& jobs);

/// {"ok":true,"req":"cancel","job":N,"state":...}.
std::string cancel_response(std::uint64_t job, JobState state);

/// The opening line of a stream reply: {"ok":true,"req":"stream",
/// "job":N,"from":OFFSET}.
std::string stream_response(std::uint64_t job, std::size_t from);

/// {"ok":true,"req":"stats","stats":SNAPSHOT} — `stats_json` is a
/// pre-encoded compact adacheck-stats-v1 document (obs::stats_json),
/// spliced in verbatim.
std::string stats_response(const std::string& stats_json);

/// The closing line of a stream reply: {"schema":"adacheck-serve-
/// eot-v1","job":N,"state":...,"bytes":TOTAL} — `bytes` is the job's
/// total stream size, so clients can verify they missed nothing.
std::string stream_eot(std::uint64_t job, JobState state,
                       std::size_t bytes);

/// {"ok":true,"req":"shutdown"}.
std::string shutdown_response();

}  // namespace adacheck::serve
