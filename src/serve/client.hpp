// Minimal blocking client for the adacheck-serve-v1 protocol: dial a
// serve endpoint, send request lines, read response lines.  Used by
// serve_test's socket round-trips; scripts typically speak the
// protocol directly (it is just newline-delimited JSON over TCP).
#pragma once

#include <optional>
#include <string>

namespace adacheck::serve {

class LineClient {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  LineClient(const std::string& host, int port);
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Sends one request line ('\n' appended when missing).  Throws
  /// std::runtime_error when the connection is gone.
  void send_line(const std::string& line);

  /// Next '\n'-terminated line, terminator stripped; nullopt on EOF.
  std::optional<std::string> recv_line();

  /// Half-closes the write side (tells the server no more requests).
  void shutdown_write();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace adacheck::serve
