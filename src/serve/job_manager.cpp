#include "serve/job_manager.hpp"

#include <sstream>
#include <utility>

#include "harness/stream_report.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "scenario/binder.hpp"

namespace adacheck::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Telemetry handles (gated on Registry::enabled(); see obs/registry.hpp).
struct ServeMetrics {
  obs::Counter& jobs_submitted;
  obs::Counter& jobs_done;
  obs::Counter& jobs_failed;
  obs::Counter& jobs_cancelled;
  obs::Counter& rejected_queue_full;
  obs::Gauge& queue_depth;

  static ServeMetrics& get() {
    static ServeMetrics* const metrics = new ServeMetrics{
        obs::Registry::instance().counter("serve.jobs_submitted"),
        obs::Registry::instance().counter("serve.jobs_done"),
        obs::Registry::instance().counter("serve.jobs_failed"),
        obs::Registry::instance().counter("serve.jobs_cancelled"),
        obs::Registry::instance().counter("serve.rejected_queue_full"),
        obs::Registry::instance().gauge("serve.queue_depth")};
    return *metrics;
  }
};

/// Terminal-state accounting shared by every path that parks a job in
/// done/failed/cancelled (worker finish, queued cancel, shutdown,
/// invalid submission).
void count_terminal(JobState state) {
  if (!obs::Registry::instance().enabled()) return;
  auto& metrics = ServeMetrics::get();
  switch (state) {
    case JobState::kDone: metrics.jobs_done.add(1); break;
    case JobState::kFailed: metrics.jobs_failed.add(1); break;
    case JobState::kCancelled: metrics.jobs_cancelled.add(1); break;
    default: break;
  }
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

bool is_terminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

struct JobManager::Job {
  std::uint64_t id = 0;
  JobRequest request;
  JobState state = JobState::kQueued;
  std::size_t cells_total = 0;
  std::size_t cells_done = 0;
  long long runs_done = 0;
  long long runs_executed = 0;
  std::string jsonl;
  std::string error;
  sim::CancellationToken cancel;
  Clock::time_point started;
  double wall_seconds = 0.0;  ///< frozen at the terminal transition
  /// obs::now_micros() stamps for the lifecycle trace spans ("job N
  /// queued" from submit to pick, "job N run" from pick to terminal);
  /// 0 when telemetry was off at submit time.
  std::uint64_t submitted_us = 0;
  std::uint64_t run_start_us = 0;
};

/// Observer bridging one job's sweep to the manager: feeds the
/// JsonlCellStream, then moves every freshly completed line into the
/// job under the manager lock so stream_wait() sees it immediately.
/// Sweep callbacks are serialized by the runner, so the buffer needs
/// no locking of its own.
class JobManager::SweepAdapter final : public sim::ISweepObserver {
 public:
  SweepAdapter(JobManager& manager, Job& job,
               std::vector<harness::SweepCellRef> refs)
      : manager_(manager), job_(job), stream_(buffer_, std::move(refs)) {}

  void on_cell_done(std::size_t cell,
                    const sim::CellResult& result) override {
    stream_.on_cell_done(cell, result);
    std::string bytes = buffer_.str();
    buffer_.str(std::string());
    manager_.publish(job_, std::move(bytes), /*cell_done=*/true);
  }

  void on_progress(const sim::SweepProgress& progress) override {
    manager_.progress(job_, progress);
  }

 private:
  JobManager& manager_;
  Job& job_;
  std::ostringstream buffer_;
  harness::JsonlCellStream stream_;
};

JobManager::JobManager(Options options) : options_(std::move(options)) {
  if (options_.max_queued < 1) options_.max_queued = 1;
  const int workers = options_.workers < 1 ? 1 : options_.workers;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobManager::~JobManager() { shutdown(); }

std::uint64_t JobManager::submit(JobRequest request) {
  // Bind outside the lock: binding validates the document (throws
  // ScenarioError before a job exists) and the result is discarded —
  // the worker re-binds when the job runs.
  const std::size_t cells =
      harness::sweep_cell_refs(scenario::bind_experiments(request.scenario),
                               scenario::bind_graphs(request.scenario))
          .size();

  const bool telemetry = obs::Registry::instance().enabled();
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) throw std::runtime_error("job manager is shut down");
  if (queued_ >= options_.max_queued) {
    if (telemetry) ServeMetrics::get().rejected_queue_full.add(1);
    throw QueueFull(options_.max_queued);
  }
  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->request = std::move(request);
  job->cells_total = cells;
  if (telemetry) job->submitted_us = obs::now_micros();
  const std::uint64_t id = job->id;
  jobs_.emplace(id, std::move(job));
  ++queued_;
  if (telemetry) {
    auto& metrics = ServeMetrics::get();
    metrics.jobs_submitted.add(1);
    metrics.queue_depth.set(static_cast<long long>(queued_));
  }
  queue_cv_.notify_one();
  return id;
}

std::uint64_t JobManager::record_invalid(std::string source,
                                         std::string error) {
  std::unique_lock<std::mutex> lock(mu_);
  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->request.source = std::move(source);
  job->state = JobState::kFailed;
  job->error = std::move(error);
  const std::uint64_t id = job->id;
  jobs_.emplace(id, std::move(job));
  count_terminal(JobState::kFailed);
  stream_cv_.notify_all();
  return id;
}

JobManager::Job* JobManager::find_locked(std::uint64_t id) const {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

std::optional<JobInfo> JobManager::status(std::uint64_t id) const {
  std::unique_lock<std::mutex> lock(mu_);
  const Job* job = find_locked(id);
  if (job == nullptr) return std::nullopt;
  JobInfo info;
  info.id = job->id;
  info.name = job->request.scenario.name;
  info.source = job->request.source;
  info.state = job->state;
  info.priority = job->request.priority;
  info.cells_total = job->cells_total;
  info.cells_done = job->cells_done;
  info.runs_done = job->runs_done;
  info.runs_executed = job->runs_executed;
  info.jsonl_bytes = job->jsonl.size();
  info.error = job->error;
  info.wall_seconds = job->state == JobState::kRunning
                          ? seconds_since(job->started)
                          : job->wall_seconds;
  return info;
}

std::vector<JobInfo> JobManager::list() const {
  std::vector<std::uint64_t> ids;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ids.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) ids.push_back(id);
  }
  std::vector<JobInfo> infos;
  infos.reserve(ids.size());
  for (const auto id : ids) {
    if (auto info = status(id)) infos.push_back(std::move(*info));
  }
  return infos;
}

bool JobManager::cancel(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  Job* job = find_locked(id);
  if (job == nullptr) return false;
  if (job->state == JobState::kQueued) {
    job->state = JobState::kCancelled;
    --queued_;
    count_terminal(JobState::kCancelled);
    if (obs::Registry::instance().enabled()) {
      ServeMetrics::get().queue_depth.set(static_cast<long long>(queued_));
    }
    stream_cv_.notify_all();
  } else if (job->state == JobState::kRunning) {
    job->cancel.request_stop();
  }
  return true;
}

JobManager::StreamChunk JobManager::stream_wait(std::uint64_t id,
                                                std::size_t offset) const {
  std::unique_lock<std::mutex> lock(mu_);
  const Job* job = find_locked(id);
  if (job == nullptr) {
    throw std::out_of_range("unknown job " + std::to_string(id));
  }
  stream_cv_.wait(lock, [&] {
    return stop_ || is_terminal(job->state) || job->jsonl.size() > offset;
  });
  StreamChunk chunk;
  chunk.state = job->state;
  if (offset < job->jsonl.size()) {
    chunk.bytes = job->jsonl.substr(offset);
  }
  chunk.terminal = is_terminal(job->state) &&
                   offset + chunk.bytes.size() >= job->jsonl.size();
  // A manager shutdown must not leave streamers spinning on a job that
  // will never progress again.
  if (stop_) chunk.terminal = true;
  return chunk;
}

std::size_t JobManager::queued() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queued_;
}

void JobManager::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!stop_) {
      stop_ = true;
      for (auto& [id, job] : jobs_) {
        if (job->state == JobState::kQueued) {
          job->state = JobState::kCancelled;
          --queued_;
          count_terminal(JobState::kCancelled);
        } else if (job->state == JobState::kRunning) {
          job->cancel.request_stop();
        }
      }
      if (obs::Registry::instance().enabled()) {
        ServeMetrics::get().queue_depth.set(static_cast<long long>(queued_));
      }
    }
    queue_cv_.notify_all();
    stream_cv_.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

JobManager::Job* JobManager::pick_locked() {
  Job* best = nullptr;
  for (auto& [id, job] : jobs_) {
    if (job->state != JobState::kQueued) continue;
    if (best == nullptr || job->request.priority > best->request.priority) {
      best = job.get();  // ids iterate ascending: first of a priority wins
    }
  }
  return best;
}

void JobManager::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stop_ || pick_locked() != nullptr; });
    if (stop_) return;
    Job* job = pick_locked();
    if (job == nullptr) continue;
    job->state = JobState::kRunning;
    job->started = Clock::now();
    --queued_;
    if (obs::Registry::instance().enabled()) {
      ServeMetrics::get().queue_depth.set(static_cast<long long>(queued_));
      job->run_start_us = obs::now_micros();
      if (job->submitted_us != 0) {
        // The queued phase of the job's lifecycle, now that it ended.
        obs::Tracer::instance().complete(
            "job " + std::to_string(job->id) + " queued", "serve",
            job->submitted_us, job->run_start_us - job->submitted_us);
      }
    }
    lock.unlock();
    execute(*job);
    lock.lock();
    stream_cv_.notify_all();
  }
}

void JobManager::execute(Job& job) {
  const auto finish = [&](JobState state, std::string error,
                          long long runs) {
    std::unique_lock<std::mutex> lock(mu_);
    job.state = state;
    job.error = std::move(error);
    job.runs_executed = runs;
    job.wall_seconds = seconds_since(job.started);
    count_terminal(state);
    if (job.run_start_us != 0 && obs::Registry::instance().enabled()) {
      obs::Tracer::instance().complete(
          "job " + std::to_string(job.id) + " run", "serve",
          job.run_start_us, obs::now_micros() - job.run_start_us);
    }
    stream_cv_.notify_all();
  };
  try {
    if (options_.before_job) options_.before_job(job.id);
    scenario::ScenarioSpec to_run = job.request.scenario;
    if (job.request.threads > 0) {
      to_run.config.threads = job.request.threads;
    }
    const auto specs = scenario::bind_experiments(to_run);
    const auto graphs = scenario::bind_graphs(to_run);
    SweepAdapter adapter(*this, job,
                         harness::sweep_cell_refs(specs, graphs));
    harness::SweepOptions options;
    options.observer = &adapter;
    options.cancel = &job.cancel;
    const auto sweep = harness::run_sweep(
        specs, graphs, scenario::monte_carlo_config(to_run), options);
    finish(JobState::kDone, "", sweep.perf.total_runs);
  } catch (const sim::SweepCancelled&) {
    finish(JobState::kCancelled, "", job.runs_done);
  } catch (const std::exception& e) {
    finish(JobState::kFailed,
           "job " + std::to_string(job.id) + ": " + e.what(), 0);
  }
}

void JobManager::publish(Job& job, std::string bytes, bool cell_done) {
  std::unique_lock<std::mutex> lock(mu_);
  if (cell_done) ++job.cells_done;
  if (!bytes.empty()) {
    job.jsonl += bytes;
    stream_cv_.notify_all();
  }
}

void JobManager::progress(Job& job, const sim::SweepProgress& progress) {
  std::unique_lock<std::mutex> lock(mu_);
  job.runs_done = progress.runs_done;
}

}  // namespace adacheck::serve
