#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/registry.hpp"
#include "scenario/spec.hpp"

namespace adacheck::serve {

namespace {

std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Counts and times one request by its wire verb ("submit", "list",
/// ... or "invalid" for lines that never parsed).  Verb names are an
/// enum-sized set, so the per-request registry lookups stay cheap.
class RequestTimer {
 public:
  RequestTimer() : enabled_(obs::Registry::instance().enabled()) {
    if (enabled_) start_ = obs::now_micros();
  }
  ~RequestTimer() {
    if (!enabled_) return;
    auto& registry = obs::Registry::instance();
    registry.counter(std::string("serve.requests.") + verb_).add(1);
    registry.histogram(std::string("serve.request_us.") + verb_)
        .record(obs::now_micros() - start_);
  }
  void set_verb(const char* verb) noexcept { verb_ = verb; }

 private:
  bool enabled_;
  const char* verb_ = "invalid";
  std::uint64_t start_ = 0;
};

/// send() the whole buffer; false on any failure (client went away).
bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

/// Buffered line reader + writer for one accepted socket.
class Server::Connection {
 public:
  explicit Connection(int fd) : fd_(fd) {}

  int fd() const noexcept { return fd_; }

  /// Next '\n'-terminated line (terminator stripped); false on EOF or
  /// error.  A final unterminated fragment at EOF is delivered as a
  /// line so `printf '...' | nc`-style clients still work.
  bool read_line(std::string& line) {
    for (;;) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) {
        if (buffer_.empty()) return false;
        line = std::exchange(buffer_, std::string());
        return true;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  bool send(const std::string& bytes) { return send_all(fd_, bytes); }

 private:
  int fd_;
  std::string buffer_;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), jobs_(options_.jobs) {
  // A daemon always runs with metrics on: the stats verb must have
  // real queue depths and request latencies to report, and telemetry
  // is additive by construction (result bytes are pinned identical by
  // serve_test / obs_test either way).
  obs::Registry::instance().set_enabled(true);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(errno_message("serve: cannot create socket"));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("serve: invalid host \"" + options_.host +
                             "\" (expected a dotted IPv4 address)");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string message = errno_message(
        "serve: cannot bind " + options_.host + ":" +
        std::to_string(options_.port));
    ::close(listen_fd_);
    throw std::runtime_error(message);
  }
  if (::listen(listen_fd_, 16) != 0) {
    const std::string message = errno_message("serve: cannot listen");
    ::close(listen_fd_);
    throw std::runtime_error(message);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
}

Server::~Server() {
  request_shutdown();
  for (auto& thread : connection_threads_) {
    if (thread.joinable()) thread.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::string Server::endpoint() const {
  return options_.host + ":" + std::to_string(port_);
}

void Server::log(char direction, const std::string& line) {
  if (options_.transcript == nullptr) return;
  std::unique_lock<std::mutex> lock(mu_);
  // Monotonic-micros prefix: transcripts double as a poor man's
  // latency record, and monotonic time is immune to clock steps.
  *options_.transcript << '[' << obs::now_micros() << "us] "
                       << (direction == '>' ? ">> " : "<< ") << line;
  if (line.empty() || line.back() != '\n') *options_.transcript << "\n";
  options_.transcript->flush();
}

void Server::run() {
  if (options_.status != nullptr) {
    *options_.status << kProtocolSchema << " listening on " << endpoint()
                     << "\n";
    options_.status->flush();
  }
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or hard error): stop accepting
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      break;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  // A shutdown request (or listener failure) ends the accept loop;
  // everything else winds down here so run() returns fully stopped.
  request_shutdown();
  for (auto& thread : connection_threads_) {
    if (thread.joinable()) thread.join();
  }
  connection_threads_.clear();
}

void Server::request_shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Unblock connection reads; fds are closed by their handlers.
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  jobs_.shutdown();  // cancels all jobs, wakes every stream_wait
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);  // unblock accept
}

void Server::handle_connection(int fd) {
  Connection conn(fd);
  std::string line;
  while (conn.read_line(line)) {
    if (line.empty()) continue;
    log('>', line);
    if (!handle_line(conn, line)) break;
  }
  ::close(fd);
}

bool Server::handle_line(Connection& conn, const std::string& line) {
  RequestTimer timer;
  Request request;
  try {
    request = parse_request(line);
  } catch (const std::exception& e) {
    const std::string response = error_response(e.what());
    log('<', response);
    return conn.send(response);
  }
  timer.set_verb(to_string(request.type));

  switch (request.type) {
    case Request::Type::kSubmit:
      handle_submit(conn, request);
      return true;
    case Request::Type::kStatus: {
      const auto info = jobs_.status(request.job);
      const std::string response =
          info ? status_response(*info)
               : error_response(
                     "unknown job " + std::to_string(request.job),
                     request.job);
      log('<', response);
      return conn.send(response);
    }
    case Request::Type::kList: {
      const std::string response = list_response(jobs_.list());
      log('<', response);
      return conn.send(response);
    }
    case Request::Type::kCancel: {
      std::string response;
      if (!jobs_.cancel(request.job)) {
        response = error_response(
            "unknown job " + std::to_string(request.job), request.job);
      } else {
        response = cancel_response(request.job,
                                   jobs_.status(request.job)->state);
      }
      log('<', response);
      return conn.send(response);
    }
    case Request::Type::kStream:
      handle_stream(conn, request);
      return true;
    case Request::Type::kStats: {
      const std::string response = stats_response(
          obs::stats_json(obs::Registry::instance().snapshot()));
      log('<', response);
      return conn.send(response);
    }
    case Request::Type::kShutdown: {
      const std::string response = shutdown_response();
      log('<', response);
      conn.send(response);
      request_shutdown();
      return false;
    }
  }
  return true;
}

void Server::handle_submit(Connection& conn, const Request& request) {
  scenario::ScenarioSpec spec;
  std::uint64_t id = 0;
  try {
    spec = request.document
               ? scenario::parse_scenario(*request.document)
               : scenario::load_scenario_file(request.path);
    JobRequest job;
    job.scenario = std::move(spec);
    job.priority = request.priority;
    job.threads = request.threads;
    job.source = request.source;
    id = jobs_.submit(std::move(job));
  } catch (const QueueFull& e) {
    const std::string response = error_response(e.what(), 0, true);
    log('<', response);
    conn.send(response);
    return;
  } catch (const std::exception& e) {
    // The document never became a runnable job; record it as a failed
    // one so the error stays addressable — and sourced — as "job <id>".
    id = jobs_.record_invalid(request.source, e.what());
    const std::string response = error_response(
        "job " + std::to_string(id) + " (" + request.source + "): " +
            e.what(),
        id);
    log('<', response);
    conn.send(response);
    return;
  }
  const std::string response = submit_response(id, JobState::kQueued);
  log('<', response);
  conn.send(response);
}

void Server::handle_stream(Connection& conn, const Request& request) {
  if (!jobs_.status(request.job)) {
    const std::string response = error_response(
        "unknown job " + std::to_string(request.job), request.job);
    log('<', response);
    conn.send(response);
    return;
  }
  const std::string opening = stream_response(request.job, request.from);
  log('<', opening);
  if (!conn.send(opening)) return;

  std::size_t offset = request.from;
  std::size_t streamed = 0;
  for (;;) {
    JobManager::StreamChunk chunk;
    try {
      chunk = jobs_.stream_wait(request.job, offset);
    } catch (const std::out_of_range& e) {
      conn.send(error_response(e.what(), request.job));
      return;
    }
    if (!chunk.bytes.empty()) {
      if (!conn.send(chunk.bytes)) return;  // client went away
      offset += chunk.bytes.size();
      streamed += chunk.bytes.size();
    }
    if (chunk.terminal) {
      if (options_.transcript != nullptr && streamed > 0) {
        log('<', "[streamed " + std::to_string(streamed) +
                     " bytes of cell lines for job " +
                     std::to_string(request.job) + "]");
      }
      const std::string eot =
          stream_eot(request.job, chunk.state, offset);
      log('<', eot);
      conn.send(eot);
      return;
    }
  }
}

}  // namespace adacheck::serve
