// The jobs/queueing layer behind `adacheck serve`.
//
// A JobManager turns validated scenario documents into *jobs*: each
// submission enters a bounded queue (backpressure — a full queue
// rejects the submit instead of buffering without limit), worker
// threads pick the highest-priority oldest queued job (FIFO within a
// priority level), and every job executes as one scenario sweep on the
// process-wide shared ThreadPool with an optional per-job parallelism
// budget (JobRequest::threads caps the job's chunk concurrency without
// affecting its results).
//
// Lifecycle: kQueued -> kRunning -> one of kDone / kFailed /
// kCancelled.  A job submitted with an invalid document never runs —
// record_invalid() registers it directly as kFailed so "job <id>"
// stays a valid handle for debugging multi-job sessions.
//
// Results are the point: a job's JSONL stream is produced by the exact
// harness::JsonlCellStream + scenario::run_scenario pipeline that
// `adacheck run --jsonl` uses, so the accumulated bytes are
// byte-identical to a batch run of the same document at any thread
// count (pinned by serve_test).  The stream is observable live:
// stream_wait() blocks until the job has bytes past an offset or
// reaches a terminal state, which is what the `stream` protocol
// request loops on.
//
// Cancellation is cooperative and prompt: cancel() flips the job's
// sim::CancellationToken, workers drain the sweep's remaining chunks
// without simulating, and the job lands in kCancelled with its JSONL a
// clean prefix (cells 0..k in index order) of the full stream.  No
// cell completion is ever reported after the cancel took effect.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "scenario/spec.hpp"
#include "sim/observer.hpp"

namespace adacheck::serve {

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

/// "queued" | "running" | "done" | "failed" | "cancelled".
const char* to_string(JobState state);

/// True for kDone / kFailed / kCancelled — the states a job can never
/// leave.
bool is_terminal(JobState state) noexcept;

/// Thrown by submit() when the bounded queue is at capacity; the
/// protocol layer translates it into a "queue_full" error response so
/// clients can back off and retry.
class QueueFull : public std::runtime_error {
 public:
  explicit QueueFull(std::size_t limit)
      : std::runtime_error("submission queue full (" +
                           std::to_string(limit) +
                           " jobs queued); retry later"),
        limit_(limit) {}
  std::size_t limit() const noexcept { return limit_; }

 private:
  std::size_t limit_;
};

/// One validated submission.
struct JobRequest {
  scenario::ScenarioSpec scenario;
  /// Higher values run earlier; equal priorities run in submit order.
  int priority = 0;
  /// Per-job parallelism cap (overrides the scenario's config.threads
  /// when > 0).  Purely a scheduling budget — results are identical
  /// for every value.
  int threads = 0;
  /// Where the document came from, for error messages and `list`
  /// ("inline", a file path, a client label).
  std::string source;
};

/// Point-in-time snapshot of one job, safe to read without holding any
/// manager lock.
struct JobInfo {
  std::uint64_t id = 0;
  std::string name;    ///< scenario name ("" for invalid submissions)
  std::string source;
  JobState state = JobState::kQueued;
  int priority = 0;
  std::size_t cells_total = 0;  ///< flat (row, scheme) cells of the sweep
  std::size_t cells_done = 0;
  long long runs_done = 0;      ///< executed runs so far (live)
  long long runs_executed = 0;  ///< final total (terminal jobs)
  std::size_t jsonl_bytes = 0;  ///< accumulated stream size
  std::string error;            ///< what() for failed jobs
  double wall_seconds = 0.0;    ///< running/terminal: time since start
};

struct JobManagerOptions {
  /// Queued-job bound; submits past it throw QueueFull.
  std::size_t max_queued = 64;
  /// Concurrent job executions (each internally parallel on the
  /// shared pool).  Clamped to >= 1.
  int workers = 2;
  /// Test seam, called on the worker right before a job's sweep
  /// starts; a throw fails the job.
  std::function<void(std::uint64_t)> before_job;
};

class JobManager {
 public:
  using Options = JobManagerOptions;

  explicit JobManager(Options options = {});
  /// Cancels everything still pending and joins the workers.
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Validates the request by binding its experiments (throws
  /// scenario::ScenarioError on an invalid document), then enqueues it.
  /// Throws QueueFull when the queue is at the bound.  Returns the job
  /// id (ids are assigned in submit order, starting at 1).
  std::uint64_t submit(JobRequest request);

  /// Registers a job that failed validation before it could be
  /// enqueued, so the error stays addressable as "job <id>".  Never
  /// throws QueueFull — failed records are terminal and occupy no
  /// queue slot.
  std::uint64_t record_invalid(std::string source, std::string error);

  /// Snapshot of one job; nullopt for unknown ids.
  std::optional<JobInfo> status(std::uint64_t id) const;

  /// Snapshots of every job, in id (= submission) order.
  std::vector<JobInfo> list() const;

  /// Requests cancellation: a queued job is marked kCancelled on the
  /// spot, a running job's CancellationToken is flipped (the job lands
  /// in kCancelled when its workers drain).  Returns false for unknown
  /// ids; terminal jobs are left untouched (returns true).
  bool cancel(std::uint64_t id);

  /// One live slice of a job's JSONL stream: bytes past `offset`
  /// (empty when the job is already terminal and fully read).
  struct StreamChunk {
    std::string bytes;
    JobState state = JobState::kQueued;
    /// True when no further bytes can ever appear: the job is terminal
    /// AND `offset + bytes.size()` reached the end of its stream.
    bool terminal = false;
  };

  /// Blocks until the job has stream bytes past `offset`, reaches a
  /// terminal state, or the manager shuts down; then returns the
  /// available slice.  Throws std::out_of_range for unknown ids.
  StreamChunk stream_wait(std::uint64_t id, std::size_t offset) const;

  /// Cancels every queued and running job, wakes all waiters, and
  /// joins the workers.  Idempotent.
  void shutdown();

  /// Jobs currently waiting in the queue (diagnostics / tests).
  std::size_t queued() const;

 private:
  struct Job;
  class SweepAdapter;

  void worker_loop();
  Job* find_locked(std::uint64_t id) const;
  /// Highest priority, lowest id among queued jobs; nullptr when none.
  Job* pick_locked();
  void execute(Job& job);
  /// Appends freshly emitted stream bytes / progress to the job and
  /// wakes stream waiters.  Called from observer callbacks (already
  /// serialized per sweep by the runner).
  void publish(Job& job, std::string bytes, bool cell_done);
  void progress(Job& job, const sim::SweepProgress& progress);

  Options options_;
  mutable std::mutex mu_;
  mutable std::condition_variable queue_cv_;   ///< workers wait here
  mutable std::condition_variable stream_cv_;  ///< stream_wait blocks here
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;
  std::size_t queued_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace adacheck::serve
