#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace adacheck::serve {

LineClient::LineClient(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("client: cannot create socket: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("client: invalid host \"" + host + "\"");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string message = std::string("client: cannot connect to ") +
                                host + ":" + std::to_string(port) + ": " +
                                std::strerror(errno);
    ::close(fd_);
    throw std::runtime_error(message);
  }
}

LineClient::~LineClient() {
  if (fd_ >= 0) ::close(fd_);
}

void LineClient::send_line(const std::string& line) {
  std::string bytes = line;
  if (bytes.empty() || bytes.back() != '\n') bytes += '\n';
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) throw std::runtime_error("client: connection lost");
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> LineClient::recv_line() {
  for (;;) {
    const auto newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (buffer_.empty()) return std::nullopt;
      return std::exchange(buffer_, std::string());
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void LineClient::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

}  // namespace adacheck::serve
