#include "serve/protocol.hpp"

#include <sstream>

#include "harness/json_writer.hpp"
#include "scenario/schema.hpp"

namespace adacheck::serve {

namespace {

using namespace scenario::schema;
using util::json::Value;

void write_job_fields(harness::JsonWriter& json, const JobInfo& info) {
  json.kv("job", info.id);
  if (!info.name.empty()) json.kv("name", info.name);
  if (!info.source.empty()) json.kv("source", info.source);
  json.kv("state", std::string(to_string(info.state)));
  json.kv("priority", info.priority);
  json.kv("cells_total", info.cells_total);
  json.kv("cells_done", info.cells_done);
  json.kv("runs_done", info.runs_done);
  json.kv("runs_executed", info.runs_executed);
  json.kv("jsonl_bytes", info.jsonl_bytes);
  if (!info.error.empty()) json.kv("error", info.error);
  json.kv("wall_seconds", info.wall_seconds);
}

/// Every response line starts the same way; `ok` and the request echo
/// come first so a human reading a transcript can scan outcomes.
class ResponseLine {
 public:
  explicit ResponseLine(bool ok)
      : json_(out_, harness::JsonStyle::kCompact) {
    json_.begin_object();
    json_.kv("schema", std::string(kProtocolSchema));
    json_.kv("ok", ok);
  }
  harness::JsonWriter& json() { return json_; }
  std::string finish() {
    json_.end_object();
    out_ << "\n";
    return out_.str();
  }

 private:
  std::ostringstream out_;
  harness::JsonWriter json_;
};

std::uint64_t parse_job_id(const Value& v, const std::string& path) {
  const auto id = as_int(require(v, path, "job"), member_path(path, "job"));
  if (id < 1) fail(member_path(path, "job"), "must be >= 1");
  return static_cast<std::uint64_t>(id);
}

}  // namespace

const char* to_string(Request::Type type) {
  switch (type) {
    case Request::Type::kSubmit: return "submit";
    case Request::Type::kStatus: return "status";
    case Request::Type::kList: return "list";
    case Request::Type::kCancel: return "cancel";
    case Request::Type::kStream: return "stream";
    case Request::Type::kStats: return "stats";
    case Request::Type::kShutdown: return "shutdown";
  }
  return "unknown";
}

std::vector<std::string> known_requests() {
  return {"submit", "status", "list", "cancel", "stream", "stats",
          "shutdown"};
}

Request parse_request(const std::string& line) {
  const Value root = util::json::parse(line);
  require_object(root, "request");
  const std::string& req =
      as_string(require(root, "request", "req"), "req");
  check_name(req, known_requests(), "req");

  Request request;
  if (req == "submit") {
    request.type = Request::Type::kSubmit;
    check_keys(root, "submit",
               {"req", "scenario", "path", "priority", "threads", "source"});
    const Value* scenario = root.find("scenario");
    const Value* path = root.find("path");
    if ((scenario != nullptr) == (path != nullptr)) {
      fail("submit",
           "exactly one of \"scenario\" (inline document) and \"path\" "
           "(server-side file) is required");
    }
    if (scenario != nullptr) {
      require_object(*scenario, "submit.scenario");
      request.document = *scenario;
    } else {
      request.path = as_string(*path, "submit.path");
      if (request.path.empty()) fail("submit.path", "must not be empty");
    }
    if (const Value* priority = root.find("priority")) {
      const auto value = as_int(*priority, "submit.priority");
      if (value < -1'000'000 || value > 1'000'000) {
        fail("submit.priority", "must be in [-1e6, 1e6]");
      }
      request.priority = static_cast<int>(value);
    }
    if (const Value* threads = root.find("threads")) {
      const auto value = as_int(*threads, "submit.threads");
      if (value < 0 || value > 4096) {
        fail("submit.threads", "must be in [0, 4096]");
      }
      request.threads = static_cast<int>(value);
    }
    if (const Value* source = root.find("source")) {
      request.source = as_string(*source, "submit.source");
    }
    if (request.source.empty()) {
      request.source = request.path.empty() ? "inline" : request.path;
    }
  } else if (req == "status" || req == "cancel" || req == "stream") {
    request.type = req == "status" ? Request::Type::kStatus
                   : req == "cancel" ? Request::Type::kCancel
                                     : Request::Type::kStream;
    if (req == "stream") {
      check_keys(root, req, {"req", "job", "from"});
      if (const Value* from = root.find("from")) {
        const auto value = as_int(*from, "stream.from");
        if (value < 0) fail("stream.from", "must be >= 0");
        request.from = static_cast<std::size_t>(value);
      }
    } else {
      check_keys(root, req, {"req", "job"});
    }
    request.job = parse_job_id(root, req);
  } else if (req == "list") {
    request.type = Request::Type::kList;
    check_keys(root, req, {"req"});
  } else if (req == "stats") {
    request.type = Request::Type::kStats;
    check_keys(root, req, {"req"});
  } else {
    request.type = Request::Type::kShutdown;
    check_keys(root, req, {"req"});
  }
  return request;
}

std::string error_response(const std::string& message, std::uint64_t job,
                           bool queue_full) {
  ResponseLine line(false);
  if (job > 0) line.json().kv("job", job);
  if (queue_full) line.json().kv("queue_full", true);
  line.json().kv("error", message);
  return line.finish();
}

std::string submit_response(std::uint64_t job, JobState state) {
  ResponseLine line(true);
  line.json().kv("req", std::string("submit"));
  line.json().kv("job", job);
  line.json().kv("state", std::string(to_string(state)));
  return line.finish();
}

std::string status_response(const JobInfo& info) {
  ResponseLine line(true);
  line.json().kv("req", std::string("status"));
  line.json().key("job");
  line.json().begin_object();
  write_job_fields(line.json(), info);
  line.json().end_object();
  return line.finish();
}

std::string list_response(const std::vector<JobInfo>& jobs) {
  ResponseLine line(true);
  line.json().kv("req", std::string("list"));
  line.json().key("jobs");
  line.json().begin_array();
  for (const auto& info : jobs) {
    line.json().begin_object();
    write_job_fields(line.json(), info);
    line.json().end_object();
  }
  line.json().end_array();
  return line.finish();
}

std::string cancel_response(std::uint64_t job, JobState state) {
  ResponseLine line(true);
  line.json().kv("req", std::string("cancel"));
  line.json().kv("job", job);
  line.json().kv("state", std::string(to_string(state)));
  return line.finish();
}

std::string stream_response(std::uint64_t job, std::size_t from) {
  ResponseLine line(true);
  line.json().kv("req", std::string("stream"));
  line.json().kv("job", job);
  line.json().kv("from", from);
  return line.finish();
}

std::string stats_response(const std::string& stats_json) {
  ResponseLine line(true);
  line.json().kv("req", std::string("stats"));
  line.json().key("stats");
  line.json().raw_value(stats_json);
  return line.finish();
}

std::string stream_eot(std::uint64_t job, JobState state,
                       std::size_t bytes) {
  std::ostringstream out;
  harness::JsonWriter json(out, harness::JsonStyle::kCompact);
  json.begin_object();
  json.kv("schema", std::string(kEotSchema));
  json.kv("job", job);
  json.kv("state", std::string(to_string(state)));
  json.kv("bytes", bytes);
  json.end_object();
  out << "\n";
  return out.str();
}

std::string shutdown_response() {
  ResponseLine line(true);
  line.json().kv("req", std::string("shutdown"));
  return line.finish();
}

}  // namespace adacheck::serve
