// The `adacheck serve` daemon: a loopback TCP listener speaking
// adacheck-serve-v1 (serve/protocol.hpp) in front of a JobManager
// (serve/job_manager.hpp).
//
// One thread accepts connections; each connection gets its own handler
// thread reading newline-delimited requests and writing responses, so
// a client blocked on `stream` (live per-cell JSONL) never stalls
// submits from other clients.  A `shutdown` request — or
// request_shutdown() from a signal handler — cancels every queued and
// running job, unblocks all streams, closes every connection, and
// returns run() to the caller.
//
// The server binds 127.0.0.1 (or the configured host) only; this is a
// local job service, not an internet-facing endpoint.  Port 0 asks the
// kernel for an ephemeral port — read the choice back with port() (the
// driver's --port-file plumbing for scripts).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/job_manager.hpp"
#include "serve/protocol.hpp"

namespace adacheck::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 = ephemeral (read back via port()).
  int port = 0;
  JobManager::Options jobs;
  /// Status chatter (listening line, per-connection notes); null = quiet.
  std::ostream* status = nullptr;
  /// Session transcript: every request and protocol-response line
  /// (">> " / "<< " prefixed; streamed cell payloads are summarized,
  /// not copied).  The CI smoke step uploads this as an artifact.
  std::ostream* transcript = nullptr;
};

class Server {
 public:
  /// Binds and listens immediately; throws std::runtime_error when the
  /// socket cannot be created or bound.
  explicit Server(ServerOptions options);
  /// Implies request_shutdown() + join.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The port actually bound (resolves port 0 requests).
  int port() const noexcept { return port_; }
  /// The address clients dial, "127.0.0.1:PORT".
  std::string endpoint() const;

  JobManager& jobs() noexcept { return jobs_; }

  /// Accepts and serves connections until a shutdown is requested.
  /// Joins every connection handler before returning.
  void run();

  /// Thread-safe external stop (signal handlers, tests): cancels all
  /// jobs and unblocks run().  Idempotent.
  void request_shutdown();

 private:
  class Connection;

  void handle_connection(int fd);
  /// Dispatches one request line, writing the response(s) to the
  /// connection.  Returns false when the connection must close (a
  /// shutdown was requested).
  bool handle_line(Connection& conn, const std::string& line);
  void handle_submit(Connection& conn, const Request& request);
  void handle_stream(Connection& conn, const Request& request);
  void log(char direction, const std::string& line);

  ServerOptions options_;
  JobManager jobs_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::mutex mu_;  ///< guards connections_, transcript writes, stopping_
  bool stopping_ = false;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace adacheck::serve
