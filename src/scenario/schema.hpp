// Shared building blocks for path-qualified JSON schema validation:
// kind-checked accessors that fail with ScenarioError("<path>: ..."),
// unknown-key rejection, and registry-name checks with "did you mean"
// suggestions.  Extracted from the scenario parser so the campaign
// parser (src/campaign) validates its documents with the exact same
// error vocabulary — one engine, two schemas.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.hpp"
#include "util/json.hpp"

namespace adacheck::scenario::schema {

/// Throws ScenarioError(path, message).
[[noreturn]] void fail(const std::string& path, const std::string& message);

/// "config" + "runs" -> "config.runs" ("" prefix stays bare).
std::string member_path(const std::string& path, std::string_view key);
/// "experiments" + 2 -> "experiments[2]".
std::string index_path(const std::string& path, std::size_t index);

/// Human-readable kind of a value ("object", "number", ...).
std::string kind_name(const util::json::Value& v);

/// Member lookup that fails on absence.
const util::json::Value& require(const util::json::Value& object,
                                 const std::string& path,
                                 std::string_view key);

// Kind-checked accessors; every failure is "<path>: expected ..., got
// <kind>" (as_int additionally requires exact integer representability).
double as_number(const util::json::Value& v, const std::string& path);
std::int64_t as_int(const util::json::Value& v, const std::string& path);
bool as_bool(const util::json::Value& v, const std::string& path);
const std::string& as_string(const util::json::Value& v,
                             const std::string& path);
const util::json::Array& as_array(const util::json::Value& v,
                                  const std::string& path);
void require_object(const util::json::Value& v, const std::string& path);

/// as_number + "must be > 0".
double positive_number(const util::json::Value& v, const std::string& path);

/// Rejects keys outside `allowed`, suggesting the closest allowed key.
void check_keys(const util::json::Value& object, const std::string& path,
                const std::vector<std::string>& allowed);

/// Registry-name check with a "did you mean" suggestion.
void check_name(const std::string& name,
                const std::vector<std::string>& known,
                const std::string& path);

}  // namespace adacheck::scenario::schema
