#include "scenario/spec.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "harness/paper_params.hpp"
#include "model/fault_env.hpp"
#include "policy/factory.hpp"
#include "sched/scheduler.hpp"
#include "scenario/schema.hpp"
#include "sim/metrics.hpp"
#include "util/text.hpp"

namespace adacheck::scenario {

// Path-qualified accessors and did-you-mean checks live in
// scenario/schema.hpp, shared with the campaign parser.
using namespace schema;
using util::json::Value;

namespace {

// --- section parsers -----------------------------------------------------

ScenarioConfig parse_config(const Value& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, path, {"runs", "seed", "validate", "threads"});
  ScenarioConfig config;
  if (const Value* runs = v.find("runs")) {
    const auto value = as_int(*runs, member_path(path, "runs"));
    if (value < 1) fail(member_path(path, "runs"), "must be >= 1");
    if (value > 1'000'000'000) {
      fail(member_path(path, "runs"), "must be <= 1e9");
    }
    config.runs = static_cast<int>(value);
  }
  if (const Value* seed = v.find("seed")) {
    const auto value = as_int(*seed, member_path(path, "seed"));
    if (value < 0) fail(member_path(path, "seed"), "must be >= 0");
    config.seed = static_cast<std::uint64_t>(value);
  }
  if (const Value* validate = v.find("validate")) {
    config.validate = as_bool(*validate, member_path(path, "validate"));
  }
  if (const Value* threads = v.find("threads")) {
    const auto value = as_int(*threads, member_path(path, "threads"));
    if (value < 0 || value > 4096) {
      fail(member_path(path, "threads"), "must be in [0, 4096]");
    }
    config.threads = static_cast<int>(value);
  }
  return config;
}

model::CheckpointCosts parse_costs(const Value& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, path, {"store", "compare", "rollback"});
  model::CheckpointCosts costs;
  costs.store = v.find("store")
                    ? as_number(*v.find("store"), member_path(path, "store"))
                    : 0.0;
  costs.compare =
      v.find("compare")
          ? as_number(*v.find("compare"), member_path(path, "compare"))
          : 0.0;
  costs.rollback =
      v.find("rollback")
          ? as_number(*v.find("rollback"), member_path(path, "rollback"))
          : 0.0;
  if (costs.store < 0.0) fail(member_path(path, "store"), "must be >= 0");
  if (costs.compare < 0.0) fail(member_path(path, "compare"), "must be >= 0");
  if (costs.rollback < 0.0) {
    fail(member_path(path, "rollback"), "must be >= 0");
  }
  if (costs.store + costs.compare <= 0.0) {
    fail(path, "store + compare must be > 0 (a free checkpoint would "
               "make infinitely many optimal)");
  }
  return costs;
}

std::vector<ScenarioRow> parse_rows(const Value& v, const std::string& path) {
  std::vector<ScenarioRow> rows;
  const auto& array = as_array(v, path);
  if (array.empty()) fail(path, "must not be empty");
  for (std::size_t i = 0; i < array.size(); ++i) {
    const std::string row_path = index_path(path, i);
    require_object(array[i], row_path);
    check_keys(array[i], row_path, {"utilization", "lambda"});
    ScenarioRow row;
    row.utilization =
        positive_number(require(array[i], row_path, "utilization"),
                        member_path(row_path, "utilization"));
    row.lambda = as_number(require(array[i], row_path, "lambda"),
                           member_path(row_path, "lambda"));
    if (row.lambda < 0.0) {
      fail(member_path(row_path, "lambda"), "must be >= 0");
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<double> parse_axis(const Value& v, const std::string& path,
                               bool strictly_positive) {
  std::vector<double> values;
  const auto& array = as_array(v, path);
  if (array.empty()) fail(path, "must not be empty");
  for (std::size_t i = 0; i < array.size(); ++i) {
    const double value = as_number(array[i], index_path(path, i));
    if (strictly_positive && value <= 0.0) {
      fail(index_path(path, i), "must be > 0");
    }
    if (!strictly_positive && value < 0.0) {
      fail(index_path(path, i), "must be >= 0");
    }
    values.push_back(value);
  }
  return values;
}

void parse_environment_keys(const Value& v, const std::string& path,
                            std::string& environment,
                            std::vector<std::string>& environments) {
  const Value* env = v.find("environment");
  const Value* envs = v.find("environments");
  if (env != nullptr && envs != nullptr) {
    fail(path, "give at most one of \"environment\" (in place) or "
               "\"environments\" (axis, ids become \"id@env\")");
  }
  if (env != nullptr) {
    const std::string env_path = member_path(path, "environment");
    environment = as_string(*env, env_path);
    check_name(environment, model::known_environments(), env_path);
  }
  if (envs != nullptr) {
    const std::string axis_path = member_path(path, "environments");
    const auto& array = as_array(*envs, axis_path);
    if (array.empty()) fail(axis_path, "must not be empty");
    for (std::size_t i = 0; i < array.size(); ++i) {
      const std::string item_path = index_path(axis_path, i);
      const std::string& name = as_string(array[i], item_path);
      check_name(name, model::known_environments(), item_path);
      if (std::find(environments.begin(), environments.end(), name) !=
          environments.end()) {
        fail(item_path, "duplicate environment \"" + name + "\"");
      }
      environments.push_back(name);
    }
  }
}

ScenarioExperiment parse_experiment(const Value& v, const std::string& path) {
  require_object(v, path);
  ScenarioExperiment exp;

  if (const Value* table = v.find("table")) {
    // A paper-table reference admits only the environment axis on top;
    // grid knobs belong to inline experiments.
    check_keys(v, path, {"table", "environment", "environments"});
    exp.table = as_string(*table, member_path(path, "table"));
    check_name(exp.table, known_tables(), member_path(path, "table"));
    parse_environment_keys(v, path, exp.environment, exp.environments);
    return exp;
  }

  check_keys(v, path,
             {"id", "title", "costs", "deadline", "fault_tolerance",
              "speed_ratio", "voltage_kappa", "util_level", "schemes",
              "rows", "grid", "environment", "environments"});

  exp.id = as_string(require(v, path, "id"), member_path(path, "id"));
  if (exp.id.empty()) fail(member_path(path, "id"), "must not be empty");
  exp.title = v.find("title")
                  ? as_string(*v.find("title"), member_path(path, "title"))
                  : exp.id;
  if (const Value* costs = v.find("costs")) {
    exp.costs = parse_costs(*costs, member_path(path, "costs"));
  }
  if (const Value* deadline = v.find("deadline")) {
    exp.deadline =
        positive_number(*deadline, member_path(path, "deadline"));
  }
  if (const Value* k = v.find("fault_tolerance")) {
    const auto value = as_int(*k, member_path(path, "fault_tolerance"));
    if (value < 0) fail(member_path(path, "fault_tolerance"), "must be >= 0");
    exp.fault_tolerance = static_cast<int>(value);
  }
  if (const Value* ratio = v.find("speed_ratio")) {
    exp.speed_ratio = as_number(*ratio, member_path(path, "speed_ratio"));
    if (exp.speed_ratio <= 1.0) {
      fail(member_path(path, "speed_ratio"), "must be > 1 (f2/f1)");
    }
  }
  if (const Value* kappa = v.find("voltage_kappa")) {
    exp.voltage_kappa =
        positive_number(*kappa, member_path(path, "voltage_kappa"));
  }
  if (const Value* level = v.find("util_level")) {
    const auto value = as_int(*level, member_path(path, "util_level"));
    if (value != 0 && value != 1) {
      fail(member_path(path, "util_level"),
           "must be 0 (f1) or 1 (f2): the speed level that converts "
           "utilization to cycles");
    }
    exp.util_level = static_cast<std::size_t>(value);
  }

  const std::string schemes_path = member_path(path, "schemes");
  const auto& schemes = as_array(require(v, path, "schemes"), schemes_path);
  if (schemes.empty()) fail(schemes_path, "must not be empty");
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const std::string item_path = index_path(schemes_path, i);
    const std::string& name = as_string(schemes[i], item_path);
    check_name(name, policy::known_policies(), item_path);
    if (std::find(exp.schemes.begin(), exp.schemes.end(), name) !=
        exp.schemes.end()) {
      fail(item_path, "duplicate scheme \"" + name + "\"");
    }
    exp.schemes.push_back(name);
  }

  const Value* rows = v.find("rows");
  const Value* grid = v.find("grid");
  if ((rows == nullptr) == (grid == nullptr)) {
    fail(path, "give exactly one of \"rows\" (explicit points) or "
               "\"grid\" (utilization x lambda cross product)");
  }
  if (rows != nullptr) {
    exp.rows = parse_rows(*rows, member_path(path, "rows"));
  } else {
    const std::string grid_path = member_path(path, "grid");
    require_object(*grid, grid_path);
    check_keys(*grid, grid_path, {"utilization", "lambda"});
    exp.grid_utilization =
        parse_axis(require(*grid, grid_path, "utilization"),
                   member_path(grid_path, "utilization"),
                   /*strictly_positive=*/true);
    exp.grid_lambda = parse_axis(require(*grid, grid_path, "lambda"),
                                 member_path(grid_path, "lambda"),
                                 /*strictly_positive=*/false);
  }

  parse_environment_keys(v, path, exp.environment, exp.environments);
  return exp;
}

// --- graph parsers -------------------------------------------------------

/// A declared-name list for did-you-mean checks on edge and node
/// resource references.
std::vector<std::string> declared_names(const auto& items) {
  std::vector<std::string> names;
  names.reserve(items.size());
  for (const auto& item : items) names.push_back(item.name);
  return names;
}

sched::GraphNode parse_graph_node(const Value& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, path,
             {"name", "cycles", "fault_tolerance", "policy", "resources"});
  sched::GraphNode node;
  node.name = as_string(require(v, path, "name"), member_path(path, "name"));
  if (node.name.empty()) fail(member_path(path, "name"), "must not be empty");
  node.cycles = positive_number(require(v, path, "cycles"),
                                member_path(path, "cycles"));
  if (const Value* k = v.find("fault_tolerance")) {
    const auto value = as_int(*k, member_path(path, "fault_tolerance"));
    if (value < 0) fail(member_path(path, "fault_tolerance"), "must be >= 0");
    node.fault_tolerance = static_cast<int>(value);
  }
  if (const Value* policy = v.find("policy")) {
    const std::string policy_path = member_path(path, "policy");
    node.policy = as_string(*policy, policy_path);
    check_name(node.policy, policy::known_policies(), policy_path);
  }
  // Resource name references are resolved to indices by the caller,
  // which knows the declared resource list.
  return node;
}

sched::TaskGraph parse_task_graph(const Value& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, path, {"period", "deadline", "nodes", "edges", "resources"});
  sched::TaskGraph graph;
  graph.period = positive_number(require(v, path, "period"),
                                 member_path(path, "period"));
  if (const Value* deadline = v.find("deadline")) {
    graph.deadline =
        positive_number(*deadline, member_path(path, "deadline"));
  }

  if (const Value* resources = v.find("resources")) {
    const std::string res_path = member_path(path, "resources");
    const auto& array = as_array(*resources, res_path);
    for (std::size_t i = 0; i < array.size(); ++i) {
      const std::string item_path = index_path(res_path, i);
      require_object(array[i], item_path);
      check_keys(array[i], item_path, {"name", "capacity"});
      sched::GraphResource resource;
      resource.name = as_string(require(array[i], item_path, "name"),
                                member_path(item_path, "name"));
      if (resource.name.empty()) {
        fail(member_path(item_path, "name"), "must not be empty");
      }
      if (const Value* capacity = array[i].find("capacity")) {
        const auto value =
            as_int(*capacity, member_path(item_path, "capacity"));
        if (value < 1 || value > 1'000'000) {
          fail(member_path(item_path, "capacity"), "must be in [1, 1e6]");
        }
        resource.capacity = static_cast<int>(value);
      }
      graph.resources.push_back(std::move(resource));
    }
  }
  const auto resource_names = declared_names(graph.resources);

  const std::string nodes_path = member_path(path, "nodes");
  const auto& nodes = as_array(require(v, path, "nodes"), nodes_path);
  if (nodes.empty()) fail(nodes_path, "must not be empty");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::string node_path = index_path(nodes_path, i);
    sched::GraphNode node = parse_graph_node(nodes[i], node_path);
    if (const Value* refs = nodes[i].find("resources")) {
      const std::string refs_path = member_path(node_path, "resources");
      const auto& array = as_array(*refs, refs_path);
      for (std::size_t r = 0; r < array.size(); ++r) {
        const std::string item_path = index_path(refs_path, r);
        const std::string& name = as_string(array[r], item_path);
        check_name(name, resource_names, item_path);
        for (std::size_t j = 0; j < graph.resources.size(); ++j) {
          if (graph.resources[j].name == name) {
            node.resources.push_back(j);
            break;
          }
        }
      }
    }
    graph.nodes.push_back(std::move(node));
  }
  const auto node_names = declared_names(graph.nodes);

  if (const Value* edges = v.find("edges")) {
    const std::string edges_path = member_path(path, "edges");
    const auto& array = as_array(*edges, edges_path);
    for (std::size_t i = 0; i < array.size(); ++i) {
      const std::string edge_path = index_path(edges_path, i);
      require_object(array[i], edge_path);
      check_keys(array[i], edge_path, {"from", "to"});
      const std::string from_path = member_path(edge_path, "from");
      const std::string to_path = member_path(edge_path, "to");
      const std::string& from =
          as_string(require(array[i], edge_path, "from"), from_path);
      const std::string& to =
          as_string(require(array[i], edge_path, "to"), to_path);
      check_name(from, node_names, from_path);
      check_name(to, node_names, to_path);
      graph.edges.push_back(
          {graph.node_index(from), graph.node_index(to)});
    }
  }

  // Cross-field invariants (duplicate names, self-edges, cycles with
  // the path spelled out) live in TaskGraph::validate; re-throw its
  // errors at the JSON path that declared the graph.
  try {
    graph.validate();
  } catch (const std::invalid_argument& e) {
    fail(path, e.what());
  }
  return graph;
}

ScenarioGraph parse_graph(const Value& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, path,
             {"id", "title", "graph", "workers", "instances",
              "skip_late_jobs", "costs", "speed_ratio", "voltage_kappa",
              "schedulers", "lambdas", "environment", "environments"});

  ScenarioGraph graph;
  graph.id = as_string(require(v, path, "id"), member_path(path, "id"));
  if (graph.id.empty()) fail(member_path(path, "id"), "must not be empty");
  graph.title = v.find("title")
                    ? as_string(*v.find("title"), member_path(path, "title"))
                    : graph.id;
  graph.graph = parse_task_graph(require(v, path, "graph"),
                                 member_path(path, "graph"));
  graph.graph.name = graph.id;
  if (const Value* workers = v.find("workers")) {
    const auto value = as_int(*workers, member_path(path, "workers"));
    if (value < 1 || value > 4096) {
      fail(member_path(path, "workers"), "must be in [1, 4096]");
    }
    graph.workers = static_cast<int>(value);
  }
  if (const Value* instances = v.find("instances")) {
    const auto value = as_int(*instances, member_path(path, "instances"));
    if (value < 1 || value > 1'000'000) {
      fail(member_path(path, "instances"), "must be in [1, 1e6]");
    }
    graph.instances = static_cast<int>(value);
  }
  if (const Value* skip = v.find("skip_late_jobs")) {
    graph.skip_late_jobs =
        as_bool(*skip, member_path(path, "skip_late_jobs"));
  }
  if (const Value* costs = v.find("costs")) {
    graph.costs = parse_costs(*costs, member_path(path, "costs"));
  }
  if (const Value* ratio = v.find("speed_ratio")) {
    graph.speed_ratio = as_number(*ratio, member_path(path, "speed_ratio"));
    if (graph.speed_ratio <= 1.0) {
      fail(member_path(path, "speed_ratio"), "must be > 1 (f2/f1)");
    }
  }
  if (const Value* kappa = v.find("voltage_kappa")) {
    graph.voltage_kappa =
        positive_number(*kappa, member_path(path, "voltage_kappa"));
  }

  const std::string sched_path = member_path(path, "schedulers");
  const auto& schedulers =
      as_array(require(v, path, "schedulers"), sched_path);
  if (schedulers.empty()) fail(sched_path, "must not be empty");
  for (std::size_t i = 0; i < schedulers.size(); ++i) {
    const std::string item_path = index_path(sched_path, i);
    const std::string& name = as_string(schedulers[i], item_path);
    check_name(name, sched::known_schedulers(), item_path);
    if (std::find(graph.schedulers.begin(), graph.schedulers.end(), name) !=
        graph.schedulers.end()) {
      fail(item_path, "duplicate scheduler \"" + name + "\"");
    }
    graph.schedulers.push_back(name);
  }

  graph.lambdas = parse_axis(require(v, path, "lambdas"),
                             member_path(path, "lambdas"),
                             /*strictly_positive=*/false);

  parse_environment_keys(v, path, graph.environment, graph.environments);
  return graph;
}

/// The experiment ids a ScenarioExperiment expands to; must match the
/// binder's naming (environment axes suffix "@env").
std::vector<std::string> expanded_ids(const ScenarioExperiment& exp) {
  const std::string base = exp.table.empty() ? exp.id : exp.table;
  if (exp.environments.empty()) return {base};
  std::vector<std::string> ids;
  ids.reserve(exp.environments.size());
  for (const auto& env : exp.environments) ids.push_back(base + "@" + env);
  return ids;
}

/// Graph ids expand the same way (the binder reuses
/// harness::graphs_with_environments, which suffixes "@env").
std::vector<std::string> expanded_ids(const ScenarioGraph& graph) {
  if (graph.environments.empty()) return {graph.id};
  std::vector<std::string> ids;
  ids.reserve(graph.environments.size());
  for (const auto& env : graph.environments) {
    ids.push_back(graph.id + "@" + env);
  }
  return ids;
}

}  // namespace

ScenarioError::ScenarioError(const std::string& path,
                             const std::string& message)
    : std::runtime_error(path.empty() ? message : path + ": " + message),
      path_(path) {}

std::vector<std::string> known_tables() {
  // Derived from the paper-table builders (each sets spec.id to its
  // registry name) so new tables need no registration here.
  std::vector<std::string> names;
  for (const auto& spec : harness::all_paper_tables()) {
    names.push_back(spec.id);
  }
  return names;
}

sim::RunBudget parse_budget(const util::json::Value& v,
                            const std::string& path) {
  require_object(v, path);
  check_keys(v, path, {"target_p_halfwidth", "target_e_rel_halfwidth",
                       "min_runs", "max_runs"});
  sim::RunBudget budget;
  if (const Value* target = v.find("target_p_halfwidth")) {
    budget.target_p_halfwidth =
        positive_number(*target, member_path(path, "target_p_halfwidth"));
  }
  if (const Value* target = v.find("target_e_rel_halfwidth")) {
    budget.target_e_rel_halfwidth = positive_number(
        *target, member_path(path, "target_e_rel_halfwidth"));
  }
  const auto parse_cap = [&](const char* key) {
    const Value* cap = v.find(key);
    if (cap == nullptr) return 0;
    const std::string cap_path = member_path(path, key);
    const auto value = as_int(*cap, cap_path);
    if (value < 1) fail(cap_path, "must be >= 1");
    if (value > 1'000'000'000) fail(cap_path, "must be <= 1e9");
    return static_cast<int>(value);
  };
  budget.min_runs = parse_cap("min_runs");
  budget.max_runs = parse_cap("max_runs");
  if (!budget.enabled()) {
    fail(path, "set at least one of \"target_p_halfwidth\" or "
               "\"target_e_rel_halfwidth\" (a budget without a target "
               "never stops early)");
  }
  if (budget.min_runs > 0 && budget.max_runs > 0 &&
      budget.min_runs > budget.max_runs) {
    fail(member_path(path, "min_runs"), "must be <= max_runs");
  }
  return budget;
}

/// "output": either the report path directly, or an object splitting
/// the report and the JSONL cell-stream paths.
void parse_output(const Value& v, const std::string& path,
                  ScenarioSpec& spec) {
  if (v.is_string()) {
    spec.output = v.as_string();
    return;
  }
  if (!v.is_object()) {
    fail(path, "expected string (report path) or object "
               "{\"report\", \"jsonl\"}, got " + kind_name(v));
  }
  check_keys(v, path, {"report", "jsonl"});
  if (const Value* report = v.find("report")) {
    spec.output = as_string(*report, member_path(path, "report"));
  }
  if (const Value* jsonl = v.find("jsonl")) {
    spec.output_jsonl = as_string(*jsonl, member_path(path, "jsonl"));
  }
}

/// "metrics": extra recorder registry names, validated with
/// did-you-mean like every other registry reference.
std::vector<std::string> parse_metrics(const Value& v,
                                       const std::string& path) {
  std::vector<std::string> metrics;
  const auto& array = as_array(v, path);
  for (std::size_t i = 0; i < array.size(); ++i) {
    const std::string item_path = index_path(path, i);
    const std::string& name = as_string(array[i], item_path);
    check_name(name, sim::known_metric_recorders(), item_path);
    if (std::find(metrics.begin(), metrics.end(), name) != metrics.end()) {
      fail(item_path, "duplicate metric recorder \"" + name + "\"");
    }
    metrics.push_back(name);
  }
  return metrics;
}

ScenarioSpec parse_scenario(const util::json::Value& root) {
  const std::string top;  // the document root has no path prefix
  require_object(root, top);
  check_keys(root, top,
             {"schema", "name", "title", "config", "budget", "output",
              "metrics", "experiments", "graphs"});

  const std::string& schema = as_string(require(root, top, "schema"), "schema");
  if (schema != "adacheck-scenario-v1") {
    fail("schema", "unsupported schema \"" + schema +
                       "\"; expected \"adacheck-scenario-v1\"");
  }

  ScenarioSpec spec;
  spec.name = as_string(require(root, top, "name"), "name");
  if (spec.name.empty()) fail("name", "must not be empty");
  spec.title =
      root.find("title") ? as_string(*root.find("title"), "title") : spec.name;
  if (const Value* config = root.find("config")) {
    spec.config = parse_config(*config, "config");
  }
  if (const Value* budget = root.find("budget")) {
    spec.budget = parse_budget(*budget, "budget");
  }
  if (const Value* output = root.find("output")) {
    parse_output(*output, "output", spec);
  }
  if (const Value* metrics = root.find("metrics")) {
    spec.metrics = parse_metrics(*metrics, "metrics");
  }

  if (const Value* experiments = root.find("experiments")) {
    const auto& array = as_array(*experiments, "experiments");
    for (std::size_t i = 0; i < array.size(); ++i) {
      spec.experiments.push_back(
          parse_experiment(array[i], index_path("experiments", i)));
    }
  }
  if (const Value* graphs = root.find("graphs")) {
    const auto& array = as_array(*graphs, "graphs");
    for (std::size_t i = 0; i < array.size(); ++i) {
      spec.graphs.push_back(parse_graph(array[i], index_path("graphs", i)));
    }
  }
  if (spec.experiments.empty() && spec.graphs.empty()) {
    fail(top, "at least one of \"experiments\" or \"graphs\" must be a "
              "non-empty array");
  }

  // Expanded ids must be unique across both lists: the sweep report
  // keys cells by them.
  std::vector<std::string> seen;
  const auto claim = [&](std::vector<std::string> ids,
                         const std::string& where) {
    for (auto& id : ids) {
      if (std::find(seen.begin(), seen.end(), id) != seen.end()) {
        fail(where, "duplicate experiment id \"" + id +
                        "\" (use an environment axis or distinct ids)");
      }
      seen.push_back(std::move(id));
    }
  };
  for (const auto& exp : spec.experiments) {
    claim(expanded_ids(exp), "experiments");
  }
  for (const auto& graph : spec.graphs) {
    claim(expanded_ids(graph), "graphs");
  }
  return spec;
}

ScenarioSpec parse_scenario_text(std::string_view text) {
  return parse_scenario(util::json::parse(text));
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(path + ": cannot open scenario file");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_scenario_text(buffer.str());
  } catch (const util::json::ParseError& e) {
    throw std::runtime_error(path + ": " + e.what());
  } catch (const ScenarioError& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace adacheck::scenario
