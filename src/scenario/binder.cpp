#include "scenario/binder.hpp"

#include <utility>

#include "harness/paper_params.hpp"

namespace adacheck::scenario {

namespace {

harness::ExperimentSpec resolve_table(const std::string& name) {
  // Same source of truth as known_tables(): the builders' spec.id.
  for (auto& spec : harness::all_paper_tables()) {
    if (spec.id == name) return std::move(spec);
  }
  // Unreachable after parse_scenario validated against known_tables().
  throw ScenarioError("experiments", "unknown table \"" + name + "\"");
}

harness::ExperimentSpec build_inline(const ScenarioExperiment& exp) {
  harness::ExperimentSpec spec;
  spec.id = exp.id;
  spec.title = exp.title;
  spec.costs = exp.costs;
  spec.deadline = exp.deadline;
  spec.fault_tolerance = exp.fault_tolerance;
  spec.speed_ratio = exp.speed_ratio;
  spec.voltage.kappa = exp.voltage_kappa;
  spec.util_level = exp.util_level;
  spec.schemes = exp.schemes;
  if (!exp.rows.empty()) {
    for (const auto& row : exp.rows) {
      spec.rows.push_back({row.utilization, row.lambda, {}});
    }
  } else {
    for (const double utilization : exp.grid_utilization) {
      for (const double lambda : exp.grid_lambda) {
        spec.rows.push_back({utilization, lambda, {}});
      }
    }
  }
  return spec;
}

}  // namespace

std::vector<harness::GraphExperimentSpec> bind_graphs(
    const ScenarioSpec& scenario) {
  std::vector<harness::GraphExperimentSpec> specs;
  for (const auto& graph : scenario.graphs) {
    harness::GraphExperimentSpec spec;
    spec.id = graph.id;
    spec.title = graph.title;
    spec.graph = graph.graph;
    spec.workers = graph.workers;
    spec.instances = graph.instances;
    spec.skip_late_jobs = graph.skip_late_jobs;
    spec.costs = graph.costs;
    spec.speed_ratio = graph.speed_ratio;
    spec.voltage.kappa = graph.voltage_kappa;
    spec.schedulers = graph.schedulers;
    spec.lambdas = graph.lambdas;
    if (graph.environments.empty()) {
      spec.environment = graph.environment;
      specs.push_back(std::move(spec));
    } else {
      auto expanded =
          harness::graphs_with_environments({spec}, graph.environments);
      specs.insert(specs.end(), std::make_move_iterator(expanded.begin()),
                   std::make_move_iterator(expanded.end()));
    }
  }
  return specs;
}

std::vector<harness::ExperimentSpec> bind_experiments(
    const ScenarioSpec& scenario) {
  std::vector<harness::ExperimentSpec> specs;
  for (const auto& exp : scenario.experiments) {
    harness::ExperimentSpec spec =
        exp.table.empty() ? build_inline(exp) : resolve_table(exp.table);
    if (exp.environments.empty()) {
      spec.environment = exp.environment;
      specs.push_back(std::move(spec));
    } else {
      auto expanded = harness::with_environments({spec}, exp.environments);
      specs.insert(specs.end(), std::make_move_iterator(expanded.begin()),
                   std::make_move_iterator(expanded.end()));
    }
  }
  return specs;
}

sim::MonteCarloConfig monte_carlo_config(const ScenarioSpec& scenario) {
  sim::MonteCarloConfig config;
  config.runs = scenario.config.runs;
  config.seed = scenario.config.seed;
  config.validate = scenario.config.validate;
  config.threads = scenario.config.threads;
  config.budget = scenario.budget;
  if (!scenario.metrics.empty()) {
    config.metrics = sim::make_metric_suite(scenario.metrics);
  }
  return config;
}

harness::SweepResult run_scenario(const ScenarioSpec& scenario,
                                  const harness::SweepOptions& options) {
  return harness::run_sweep(bind_experiments(scenario), bind_graphs(scenario),
                            monte_carlo_config(scenario), options);
}

}  // namespace adacheck::scenario
