// Declarative scenario files: schema "adacheck-scenario-v1".
//
// A scenario is a JSON document describing a whole sweep as *data* —
// policies by factory name, fault environments by registry name,
// checkpoint/energy/speed knobs, a (utilization, lambda) grid, the
// Monte-Carlo budget and seed, and the output path — so opening a new
// workload means writing a file, not compiling a binary.  The adacheck
// driver (tools/adacheck_main.cpp) runs them; scenarios/*.json ship
// the paper tables and the satellite/UAV examples in this form.
//
// Document layout (full reference in README.md "Scenarios"):
//
//   {
//     "schema": "adacheck-scenario-v1",
//     "name": "table1",                      // required identifier
//     "title": "...",                        // optional, defaults to name
//     "config": {"runs": 10000, "seed": 1592614637,
//                "validate": false, "threads": 0},      // all optional
//     "budget": {"target_p_halfwidth": 0.01,  // optional sequential
//                "target_e_rel_halfwidth": 0.02,  // stopping; at least
//                "min_runs": 256,                 // one target required
//                "max_runs": 100000},
//     "output": "table1_sweep.json",         // optional report path, or
//     "output": {"report": "table1_sweep.json",
//                "jsonl": "table1_cells.jsonl"},  // + JSONL cell stream
//     "metrics": ["tails", "checkpoints"],   // optional extra recorders
//     "experiments": [                       // classic cells (see below
//       {"table": "table1a"},                // for "graphs"): a table, or:
//       {"id": "custom",
//        "title": "...",
//        "costs": {"store": 2, "compare": 20, "rollback": 0},
//        "deadline": 10000, "fault_tolerance": 5,
//        "speed_ratio": 2.0, "voltage_kappa": 4.0, "util_level": 0,
//        "schemes": ["Poisson", "A_D_S"],    // policy factory names
//        "grid": {"utilization": [0.76, 0.8],
//                 "lambda": [1.4e-3, 1.6e-3]},   // cross product, or
//        "rows": [{"utilization": 0.92, "lambda": 1e-4}],
//        "environment": "poisson",           // one registry name, or
//        "environments": ["poisson", "bursty-orbit"]}  // an axis
//     ],
//     "graphs": [                            // optional DAG experiments
//       {"id": "pipeline",
//        "title": "...",
//        "graph": {"period": 30000, "deadline": 28000,  // end-to-end
//                  "nodes": [{"name": "decode", "cycles": 5000,
//                             "fault_tolerance": 2, "policy": "A_D_S",
//                             "resources": ["bus"]}],
//                  "edges": [{"from": "decode", "to": "filter"}],
//                  "resources": [{"name": "bus", "capacity": 1}]},
//        "workers": 2, "instances": 8, "skip_late_jobs": true,
//        "costs": {"store": 2, "compare": 20, "rollback": 0},
//        "speed_ratio": 2.0, "voltage_kappa": 4.0,
//        "schedulers": ["edf", "critical-path"],  // registry names
//        "lambdas": [1e-4, 1e-3],            // fault-rate rows
//        "environment": "poisson",           // one registry name, or
//        "environments": ["poisson", "bursty-orbit"]}  // an axis
//     ]
//   }
//
// At least one of "experiments" / "graphs" must be non-empty; ids
// share one uniqueness domain (the sweep report keys cells by them).
//
// Validation reports path-qualified errors with "did you mean"
// suggestions, e.g.:
//   experiments[2].environment: unknown name "bursty-orbitt", did you
//   mean "bursty-orbit"?
//
// The binder (scenario/binder.hpp) lowers a validated spec onto
// harness::ExperimentSpec / run_sweep; a scenario-driven sweep is
// byte-identical in its cell section to the equivalent programmatic
// one.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "model/checkpoint.hpp"
#include "sched/task_graph.hpp"
#include "sim/metrics.hpp"
#include "util/json.hpp"

namespace adacheck::scenario {

/// Schema violation with the JSON path of the offending field; what()
/// is "<path>: <message>" (just the message for root-level errors).
class ScenarioError : public std::runtime_error {
 public:
  ScenarioError(const std::string& path, const std::string& message);
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// Monte-Carlo budget and seed knobs (the "config" object).
struct ScenarioConfig {
  int runs = 10'000;
  std::uint64_t seed = 0x5EED5EED;
  bool validate = false;
  /// Parallelism cap and requested shared-pool width; 0 = pool default.
  int threads = 0;
};

/// One (utilization, lambda) grid point.
struct ScenarioRow {
  double utilization = 0.0;
  double lambda = 0.0;
};

/// One experiment: either a paper-table reference ("table", optionally
/// crossed with an environment axis) or an inline grid definition.
struct ScenarioExperiment {
  std::string table;  ///< paper-table name; empty = inline definition

  // Inline definition (defaults mirror the paper's SCP-flavor setup).
  std::string id;
  std::string title;  ///< defaults to id
  model::CheckpointCosts costs = model::CheckpointCosts::paper_scp_flavor();
  double deadline = 10'000.0;
  int fault_tolerance = 0;
  double speed_ratio = 2.0;
  double voltage_kappa = 4.0;
  std::size_t util_level = 0;
  std::vector<std::string> schemes;        ///< policy factory names
  std::vector<ScenarioRow> rows;           ///< explicit rows ("rows"), or
  std::vector<double> grid_utilization;    ///< a cross product ("grid"):
  std::vector<double> grid_lambda;         ///< utilization outer, lambda inner

  /// Single environment: applied in place, experiment id unchanged.
  std::string environment = "poisson";
  /// Environment axis: one spec copy per name, ids become "id@env"
  /// (harness::with_environments naming).  Exclusive with environment.
  std::vector<std::string> environments;
};

/// One DAG experiment from the "graphs" array: a task graph crossed
/// with a scheduler axis and a fault-rate (lambda) axis, mirroring
/// harness::GraphExperimentSpec knob for knob.
struct ScenarioGraph {
  std::string id;
  std::string title;  ///< defaults to id
  sched::TaskGraph graph;
  int workers = 1;
  int instances = 8;
  bool skip_late_jobs = true;
  model::CheckpointCosts costs = model::CheckpointCosts::paper_scp_flavor();
  double speed_ratio = 2.0;
  double voltage_kappa = 4.0;
  std::vector<std::string> schedulers;  ///< scheduler registry names
  std::vector<double> lambdas;          ///< fault-rate rows

  /// Single environment: applied in place, experiment id unchanged.
  std::string environment = "poisson";
  /// Environment axis: one spec copy per name, ids become "id@env".
  /// Exclusive with environment.
  std::vector<std::string> environments;
};

struct ScenarioSpec {
  std::string name;
  std::string title;  ///< defaults to name
  ScenarioConfig config;
  /// Precision-targeted sequential stopping (the "budget" object);
  /// disabled — fixed config.runs per cell — when absent.
  sim::RunBudget budget;
  /// Default report path for `adacheck run`.  In the document "output"
  /// is either that string directly or an object
  /// {"report": PATH, "jsonl": PATH} — the object form also names the
  /// default JSONL cell-stream path.
  std::string output;
  std::string output_jsonl;  ///< default JSONL stream path ("" = none)
  /// Extra metric recorders applied to every cell, by registry name
  /// (sim::known_metric_recorders(); the "metrics" array).
  std::vector<std::string> metrics;
  /// At least one of experiments / graphs is non-empty.
  std::vector<ScenarioExperiment> experiments;
  std::vector<ScenarioGraph> graphs;
};

/// Paper tables addressable from ScenarioExperiment::table
/// ("table1a" ... "table4b", see harness/paper_params.hpp).
std::vector<std::string> known_tables();

/// Parses a "budget" object (shared by scenario and campaign
/// documents): the four RunBudget knobs, at least one target required,
/// min_runs <= max_runs when both are set.  Throws ScenarioError.
sim::RunBudget parse_budget(const util::json::Value& v,
                            const std::string& path);

/// Lowers a parsed JSON document into a validated ScenarioSpec.
/// Throws ScenarioError on any schema violation.
ScenarioSpec parse_scenario(const util::json::Value& root);

/// util::json::parse + parse_scenario.  json::ParseError propagates
/// for syntax errors (with line/column), ScenarioError for schema
/// violations.
ScenarioSpec parse_scenario_text(std::string_view text);

/// Reads and parses a scenario file; all error messages are prefixed
/// with the file path.  Throws std::runtime_error.
ScenarioSpec load_scenario_file(const std::string& path);

}  // namespace adacheck::scenario
