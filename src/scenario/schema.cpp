#include "scenario/schema.hpp"

#include <algorithm>

#include "util/text.hpp"

namespace adacheck::scenario::schema {

using util::json::Value;

void fail(const std::string& path, const std::string& message) {
  throw ScenarioError(path, message);
}

std::string member_path(const std::string& path, std::string_view key) {
  return path.empty() ? std::string(key) : path + "." + std::string(key);
}

std::string index_path(const std::string& path, std::size_t index) {
  return path + "[" + std::to_string(index) + "]";
}

std::string kind_name(const Value& v) {
  return util::json::to_string(v.kind());
}

const Value& require(const Value& object, const std::string& path,
                     std::string_view key) {
  const Value* member = object.find(key);
  if (member == nullptr) {
    fail(path, "missing required key \"" + std::string(key) + "\"");
  }
  return *member;
}

double as_number(const Value& v, const std::string& path) {
  if (!v.is_number()) fail(path, "expected number, got " + kind_name(v));
  return v.as_number();
}

std::int64_t as_int(const Value& v, const std::string& path) {
  if (!v.is_number()) fail(path, "expected number, got " + kind_name(v));
  try {
    return v.as_int();
  } catch (const util::json::TypeError&) {
    fail(path, "expected an integer (exactly representable, |n| <= 2^53)");
  }
}

bool as_bool(const Value& v, const std::string& path) {
  if (!v.is_bool()) fail(path, "expected boolean, got " + kind_name(v));
  return v.as_bool();
}

const std::string& as_string(const Value& v, const std::string& path) {
  if (!v.is_string()) fail(path, "expected string, got " + kind_name(v));
  return v.as_string();
}

const util::json::Array& as_array(const Value& v, const std::string& path) {
  if (!v.is_array()) fail(path, "expected array, got " + kind_name(v));
  return v.as_array();
}

void require_object(const Value& v, const std::string& path) {
  if (!v.is_object()) fail(path, "expected object, got " + kind_name(v));
}

double positive_number(const Value& v, const std::string& path) {
  const double value = as_number(v, path);
  if (value <= 0.0) fail(path, "must be > 0");
  return value;
}

void check_keys(const Value& object, const std::string& path,
                const std::vector<std::string>& allowed) {
  for (const auto& [key, ignored] : object.as_object()) {
    if (std::find(allowed.begin(), allowed.end(), key) != allowed.end()) {
      continue;
    }
    std::string message = "unknown key \"" + key + "\"";
    const std::string suggestion = util::closest_match(key, allowed);
    if (!suggestion.empty()) {
      message += ", did you mean \"" + suggestion + "\"?";
    } else {
      message += " (known keys: " + util::join(allowed, ", ") + ")";
    }
    fail(path, message);
  }
}

void check_name(const std::string& name,
                const std::vector<std::string>& known,
                const std::string& path) {
  if (std::find(known.begin(), known.end(), name) != known.end()) return;
  std::string message = "unknown name \"" + name + "\"";
  const std::string suggestion = util::closest_match(name, known);
  if (!suggestion.empty()) {
    message += ", did you mean \"" + suggestion + "\"?";
  } else {
    message += " (known: " + util::join(known, ", ") + ")";
  }
  fail(path, message);
}

}  // namespace adacheck::scenario::schema
