// Lowers a validated ScenarioSpec onto the harness: paper-table
// references resolve to the harness/paper_params builders (so a
// scenario-driven table run is byte-identical in its cell section to
// the programmatic sweep), inline grids expand row-major (utilization
// outer, lambda inner), and environment axes cross via
// harness::with_environments ("id@env" naming).
#pragma once

#include "harness/sweep.hpp"
#include "scenario/spec.hpp"

namespace adacheck::scenario {

/// The harness experiment specs a scenario describes, in document
/// order (environment axes expand in place).
std::vector<harness::ExperimentSpec> bind_experiments(
    const ScenarioSpec& spec);

/// The DAG experiment specs from the scenario's "graphs" array, in
/// document order (environment axes expand in place via
/// harness::graphs_with_environments, "id@env" naming).
std::vector<harness::GraphExperimentSpec> bind_graphs(
    const ScenarioSpec& spec);

/// The sim::MonteCarloConfig encoded by the scenario's config block,
/// including the metric suite built from the "metrics" array and the
/// run budget from the "budget" object (disabled when absent).
sim::MonteCarloConfig monte_carlo_config(const ScenarioSpec& spec);

/// bind_experiments + harness::run_sweep under the scenario's config.
/// config.threads caps the parallelism (the adacheck driver
/// additionally sizes the shared pool; statistics do not depend on
/// either).  `options` threads observers / cancellation through to the
/// flat chunk queue (the driver's --progress and --jsonl plumbing).
harness::SweepResult run_scenario(const ScenarioSpec& spec,
                                  const harness::SweepOptions& options = {});

}  // namespace adacheck::scenario
