#include "sched/scheduler.hpp"

#include <stdexcept>

namespace adacheck::sched {

namespace {

/// Earliest absolute deadline first.  With sequence tie-break this is
/// exactly the pre-registry executive's (deadline, release, task)
/// order, since admission follows (release, task index).
class EdfPolicy final : public ISchedulerPolicy {
 public:
  std::string_view name() const override { return "edf"; }
  double priority_key(const DispatchCandidate& candidate,
                      double /*now*/) const override {
    return candidate.absolute_deadline;
  }
};

/// First dispatchable first: ready_time order (graph nodes become
/// ready when their last predecessor completes, not at release).
class FifoPolicy final : public ISchedulerPolicy {
 public:
  std::string_view name() const override { return "fifo"; }
  double priority_key(const DispatchCandidate& candidate,
                      double /*now*/) const override {
    return candidate.ready_time;
  }
};

/// Longest inclusive downstream critical path first — the classic DAG
/// heuristic: nodes gating the most remaining work go first.
class CriticalPathPolicy final : public ISchedulerPolicy {
 public:
  std::string_view name() const override { return "critical-path"; }
  double priority_key(const DispatchCandidate& candidate,
                      double /*now*/) const override {
    return -candidate.remaining_path;
  }
};

/// Least laxity first: slack to the absolute deadline minus the
/// remaining-path work bound (cycles at f1 = time at base speed).
class LeastLaxityPolicy final : public ISchedulerPolicy {
 public:
  std::string_view name() const override { return "least-laxity"; }
  double priority_key(const DispatchCandidate& candidate,
                      double now) const override {
    return (candidate.absolute_deadline - now) - candidate.remaining_path;
  }
};

}  // namespace

const std::vector<SchedulerInfo>& known_scheduler_info() {
  static const std::vector<SchedulerInfo>* const info =
      new std::vector<SchedulerInfo>{
          {"edf",
           "earliest absolute deadline first (non-preemptive; the default)"},
          {"fifo", "first ready first (precedence-aware arrival order)"},
          {"critical-path",
           "longest inclusive downstream critical path first"},
          {"least-laxity",
           "smallest deadline slack minus remaining-path work first"},
      };
  return *info;
}

std::vector<std::string> known_schedulers() {
  std::vector<std::string> names;
  names.reserve(known_scheduler_info().size());
  for (const auto& info : known_scheduler_info()) names.push_back(info.name);
  return names;
}

bool is_known_scheduler(std::string_view name) {
  for (const auto& info : known_scheduler_info()) {
    if (info.name == name) return true;
  }
  return false;
}

std::unique_ptr<ISchedulerPolicy> make_scheduler(const std::string& name) {
  if (name == "edf") return std::make_unique<EdfPolicy>();
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "critical-path") return std::make_unique<CriticalPathPolicy>();
  if (name == "least-laxity") return std::make_unique<LeastLaxityPolicy>();
  std::string message = "make_scheduler: unknown scheduler \"" + name +
                        "\"; known schedulers:";
  for (const auto& known : known_scheduler_info()) {
    message += " " + known.name;
  }
  throw std::invalid_argument(message);
}

}  // namespace adacheck::sched
