// Precedence-constrained task graphs (DAG workloads).
//
// The paper's model is one job against one deadline; a TaskGraph
// composes many such jobs into a directed acyclic graph: each node is
// a paper-model job (cycles, fault-tolerance k, checkpointing policy)
// and each edge a precedence constraint.  A whole graph instance is
// released every `period` with one end-to-end deadline; nodes may also
// declare shared resources (named, integer capacity) they must hold
// while executing — the graph executive (sched/graph_executive.hpp)
// accounts the resulting blocking time separately from execution.
//
// Validation is strict and path-qualified: a cyclic graph is rejected
// with the actual cycle spelled out ("cycle: a -> b -> a"), edge and
// resource references must name declared nodes/resources, and names
// must be unique — the scenario layer re-throws these at the JSON
// path that declared the graph.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace adacheck::sched {

/// One DAG node: a paper-model job plus the shared resources it holds
/// while executing (all-or-nothing acquisition, one unit each).
struct GraphNode {
  std::string name;
  double cycles = 0.0;           ///< worst-case cycles (at f1 = 1)
  int fault_tolerance = 0;       ///< k for this node's job
  std::string policy = "A_D_S";  ///< checkpointing scheme
  std::vector<std::size_t> resources;  ///< indices into TaskGraph::resources
};

/// A shared resource with integer capacity (units held concurrently).
struct GraphResource {
  std::string name;
  int capacity = 1;
};

/// Precedence edge: `to` cannot start before `from` completes.
struct GraphEdge {
  std::size_t from = 0;
  std::size_t to = 0;
};

struct TaskGraph {
  std::string name = "graph";
  double period = 0.0;    ///< release separation of whole instances
  double deadline = 0.0;  ///< end-to-end, relative (0 = implicit: == period)
  std::vector<GraphNode> nodes;
  std::vector<GraphEdge> edges;
  std::vector<GraphResource> resources;

  double end_to_end_deadline() const noexcept {
    return deadline > 0.0 ? deadline : period;
  }

  /// Appends a node; returns its index.
  std::size_t add_node(GraphNode node);
  /// Appends an edge by node names; throws std::invalid_argument when
  /// either name is undeclared.
  void add_edge(const std::string& from, const std::string& to);
  /// Appends a resource; returns its index (for GraphNode::resources).
  std::size_t add_resource(std::string name, int capacity = 1);

  /// Index of the named node; throws std::invalid_argument when absent.
  std::size_t node_index(std::string_view node_name) const;

  /// Throws std::invalid_argument on: no nodes, non-positive period or
  /// cycles, negative k, duplicate node/resource names, out-of-range
  /// edge or resource references, duplicate resource refs on a node,
  /// capacity < 1, self-edges, or a cycle (error names the path).
  void validate() const;

  /// Node indices in topological order; among simultaneously ready
  /// nodes the smallest index comes first (Kahn's algorithm) so the
  /// order is deterministic.  Requires a valid acyclic graph.
  std::vector<std::size_t> topological_order() const;

  /// Per-node inclusive downstream critical path in cycles: the node's
  /// own cycles plus the longest successor chain.  Feeds the
  /// critical-path and least-laxity scheduler policies.
  std::vector<double> downstream_path_cycles() const;

  /// Cycles along the longest path through the graph.
  double critical_path_cycles() const;
};

}  // namespace adacheck::sched
