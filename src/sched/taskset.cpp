#include "sched/taskset.hpp"

#include <algorithm>
#include <stdexcept>

#include "analytic/dvs_estimate.hpp"

namespace adacheck::sched {

void PeriodicTask::validate() const {
  if (cycles <= 0.0)
    throw std::invalid_argument("PeriodicTask: cycles must be > 0");
  if (period <= 0.0)
    throw std::invalid_argument("PeriodicTask: period must be > 0");
  if (relative_deadline < 0.0 || relative_deadline > period) {
    throw std::invalid_argument(
        "PeriodicTask: relative deadline must be in (0, period]");
  }
  if (phase < 0.0) throw std::invalid_argument("PeriodicTask: phase < 0");
  if (fault_tolerance < 0)
    throw std::invalid_argument("PeriodicTask: fault_tolerance < 0");
  if (policy.empty())
    throw std::invalid_argument("PeriodicTask: empty policy name");
}

void TaskSet::validate() const {
  if (tasks.empty()) throw std::invalid_argument("TaskSet: no tasks");
  for (const auto& task : tasks) task.validate();
}

double TaskSet::utilization(double frequency) const {
  if (frequency <= 0.0)
    throw std::invalid_argument("TaskSet::utilization: frequency <= 0");
  double total = 0.0;
  for (const auto& task : tasks) {
    total += task.cycles / (frequency * task.period);
  }
  return total;
}

double effective_utilization(const TaskSet& set, double frequency,
                             double checkpoint_cycles, double lambda) {
  set.validate();
  double total = 0.0;
  for (const auto& task : set.tasks) {
    total += analytic::dvs_time_estimate(task.cycles, frequency,
                                         checkpoint_cycles, lambda) /
             task.period;
  }
  return total;
}

std::vector<double> blocking_estimates(const TaskSet& set, double frequency,
                                       double checkpoint_cycles,
                                       double lambda) {
  set.validate();
  std::vector<double> estimates(set.tasks.size(), 0.0);
  // Non-preemptive: any job may have to wait for the single longest job
  // of any *other* task that is already running.
  std::vector<double> job_times;
  job_times.reserve(set.tasks.size());
  for (const auto& task : set.tasks) {
    job_times.push_back(analytic::dvs_time_estimate(
        task.cycles, frequency, checkpoint_cycles, lambda));
  }
  for (std::size_t i = 0; i < set.tasks.size(); ++i) {
    double worst = 0.0;
    for (std::size_t j = 0; j < set.tasks.size(); ++j) {
      if (j != i) worst = std::max(worst, job_times[j]);
    }
    estimates[i] = worst;
  }
  return estimates;
}

}  // namespace adacheck::sched
