// Periodic task sets for the scheduling substrate.
//
// The paper analyzes one job against its deadline; real embedded
// systems run sets of periodic tasks.  A PeriodicTask releases a job
// every `period` time units (first release at `phase`), each job being
// an instance of the paper's task model executed under a checkpointing
// policy.  The admission analysis estimates schedulability from the
// fault-aware completion-time estimate t_est (paper §3) before any
// simulation is run.
#pragma once

#include <string>
#include <vector>

#include "model/checkpoint.hpp"
#include "model/fault.hpp"
#include "model/speed.hpp"
#include "model/task.hpp"

namespace adacheck::sched {

struct PeriodicTask {
  std::string name = "task";
  double cycles = 0.0;        ///< worst-case cycles per job (at f1 = 1)
  double period = 0.0;        ///< release separation
  double relative_deadline = 0.0;  ///< <= period (0 = implicit: == period)
  double phase = 0.0;         ///< first release time
  int fault_tolerance = 0;    ///< k per job
  std::string policy = "A_D_S";  ///< checkpointing scheme for its jobs

  double deadline() const noexcept {
    return relative_deadline > 0.0 ? relative_deadline : period;
  }
  void validate() const;
};

struct TaskSet {
  std::vector<PeriodicTask> tasks;

  void validate() const;
  /// Raw utilization sum(N_i / T_i) at speed f.
  double utilization(double frequency = 1.0) const;
};

/// Fault-aware admission estimate: effective utilization
/// sum(t_est(N_i, f, c, lambda) / T_i) at the given speed.  Values
/// above 1 mean the executive cannot keep up even ignoring blocking.
double effective_utilization(const TaskSet& set, double frequency,
                             double checkpoint_cycles, double lambda);

/// Non-preemptive EDF blocking bound: a job can additionally wait for
/// the longest lower-priority job's fault-aware estimate.  Returns per
/// task the worst-case start delay estimate; used by the example to
/// sanity-check deadlines before simulating.
std::vector<double> blocking_estimates(const TaskSet& set, double frequency,
                                       double checkpoint_cycles,
                                       double lambda);

}  // namespace adacheck::sched
