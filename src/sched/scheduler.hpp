// Scheduler-policy registry for the executives.
//
// Dispatch order used to be hardwired non-preemptive EDF inside
// executive.cpp; it is now a pluggable policy resolved by name, the
// same factory-by-name shape as the fault-environment and
// checkpoint-policy registries.  A policy is a pure priority function:
// given a dispatch candidate and the current time it returns a key,
// and the executive dispatches the lowest key first.  Ties are always
// broken by admission sequence — a deterministic total order — so
// every policy yields the same schedule at any thread count, and the
// default "edf" reproduces the pre-registry executive bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace adacheck::sched {

/// One dispatchable job as a policy sees it.  The flat executive fills
/// instance/remaining_path from the task (job index, task cycles); the
/// graph executive fills them from the DAG (instance number, inclusive
/// downstream critical-path cycles).
struct DispatchCandidate {
  std::size_t node = 0;       ///< task / graph-node index
  int instance = 0;           ///< per-task job index / graph instance
  double release = 0.0;       ///< release time of the job (or its instance)
  double ready_time = 0.0;    ///< when it became dispatchable
  double absolute_deadline = 0.0;
  /// Remaining work bound in cycles at f1 = 1 (== time units at base
  /// speed): the task's cycles, or the node's inclusive downstream
  /// critical path.
  double remaining_path = 0.0;
  /// Admission order — the universal deterministic tie-break.
  std::uint64_t sequence = 0;
};

/// A dispatch policy: lower priority_key dispatches first; the
/// executive breaks key ties by DispatchCandidate::sequence.
/// Implementations must be pure functions of (candidate, now).
class ISchedulerPolicy {
 public:
  virtual ~ISchedulerPolicy() = default;

  /// Registry name ("edf", "fifo", ...).
  virtual std::string_view name() const = 0;
  virtual double priority_key(const DispatchCandidate& candidate,
                              double now) const = 0;
};

/// Registry entry for `adacheck list schedulers`.
struct SchedulerInfo {
  std::string name;
  std::string description;
};

/// Every registered policy, in stable listing order.
const std::vector<SchedulerInfo>& known_scheduler_info();

/// Registry names in listing order (for validation messages).
std::vector<std::string> known_schedulers();

bool is_known_scheduler(std::string_view name);

/// Builds a policy by registry name; throws std::invalid_argument
/// (listing the known names) on an unknown one.
std::unique_ptr<ISchedulerPolicy> make_scheduler(const std::string& name);

}  // namespace adacheck::sched
