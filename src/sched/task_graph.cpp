#include "sched/task_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace adacheck::sched {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("TaskGraph: " + message);
}

}  // namespace

std::size_t TaskGraph::add_node(GraphNode node) {
  nodes.push_back(std::move(node));
  return nodes.size() - 1;
}

void TaskGraph::add_edge(const std::string& from, const std::string& to) {
  edges.push_back({node_index(from), node_index(to)});
}

std::size_t TaskGraph::add_resource(std::string resource_name, int capacity) {
  resources.push_back({std::move(resource_name), capacity});
  return resources.size() - 1;
}

std::size_t TaskGraph::node_index(std::string_view node_name) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].name == node_name) return i;
  }
  fail("unknown node \"" + std::string(node_name) + "\"");
}

void TaskGraph::validate() const {
  if (nodes.empty()) fail("at least one node required");
  if (period <= 0.0) fail("period must be > 0");
  if (deadline < 0.0) fail("deadline must be >= 0 (0 = period)");

  std::unordered_set<std::string> seen;
  for (const auto& node : nodes) {
    if (node.name.empty()) fail("node names must be non-empty");
    if (!seen.insert(node.name).second) {
      fail("duplicate node name \"" + node.name + "\"");
    }
    if (node.cycles <= 0.0) {
      fail("node \"" + node.name + "\": cycles must be > 0");
    }
    if (node.fault_tolerance < 0) {
      fail("node \"" + node.name + "\": fault_tolerance must be >= 0");
    }
    std::unordered_set<std::size_t> held;
    for (const std::size_t r : node.resources) {
      if (r >= resources.size()) {
        fail("node \"" + node.name + "\": resource index out of range");
      }
      if (!held.insert(r).second) {
        fail("node \"" + node.name + "\": duplicate resource \"" +
             resources[r].name + "\"");
      }
    }
  }

  seen.clear();
  for (const auto& resource : resources) {
    if (resource.name.empty()) fail("resource names must be non-empty");
    if (!seen.insert(resource.name).second) {
      fail("duplicate resource name \"" + resource.name + "\"");
    }
    if (resource.capacity < 1) {
      fail("resource \"" + resource.name + "\": capacity must be >= 1");
    }
  }

  for (const auto& edge : edges) {
    if (edge.from >= nodes.size() || edge.to >= nodes.size()) {
      fail("edge references a node index out of range");
    }
    if (edge.from == edge.to) {
      fail("self-edge on node \"" + nodes[edge.from].name + "\"");
    }
  }

  // Cycle check via DFS with an explicit recursion stack; on hitting a
  // gray node the stack spells out the offending path.
  std::vector<std::vector<std::size_t>> successors(nodes.size());
  for (const auto& edge : edges) successors[edge.from].push_back(edge.to);

  enum class Mark { kWhite, kGray, kBlack };
  std::vector<Mark> mark(nodes.size(), Mark::kWhite);
  std::vector<std::size_t> path;

  struct Frame {
    std::size_t node;
    std::size_t next = 0;  ///< next successor to visit
  };
  for (std::size_t root = 0; root < nodes.size(); ++root) {
    if (mark[root] != Mark::kWhite) continue;
    std::vector<Frame> stack{{root}};
    mark[root] = Mark::kGray;
    path.push_back(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next < successors[frame.node].size()) {
        const std::size_t next = successors[frame.node][frame.next++];
        if (mark[next] == Mark::kGray) {
          std::string cycle = "cycle:";
          const auto start =
              std::find(path.begin(), path.end(), next) - path.begin();
          for (std::size_t i = static_cast<std::size_t>(start);
               i < path.size(); ++i) {
            cycle += " " + nodes[path[i]].name + " ->";
          }
          cycle += " " + nodes[next].name;
          fail(cycle);
        }
        if (mark[next] == Mark::kWhite) {
          mark[next] = Mark::kGray;
          path.push_back(next);
          stack.push_back({next});
        }
      } else {
        mark[frame.node] = Mark::kBlack;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
}

std::vector<std::size_t> TaskGraph::topological_order() const {
  std::vector<int> indegree(nodes.size(), 0);
  std::vector<std::vector<std::size_t>> successors(nodes.size());
  for (const auto& edge : edges) {
    successors[edge.from].push_back(edge.to);
    ++indegree[edge.to];
  }
  // Kahn's with an ordered frontier: always take the smallest ready
  // index, so the order is a pure function of the graph.
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(nodes.size());
  while (!frontier.empty()) {
    const auto it = std::min_element(frontier.begin(), frontier.end());
    const std::size_t node = *it;
    frontier.erase(it);
    order.push_back(node);
    for (const std::size_t next : successors[node]) {
      if (--indegree[next] == 0) frontier.push_back(next);
    }
  }
  if (order.size() != nodes.size()) {
    fail("topological_order on a cyclic graph (validate() first)");
  }
  return order;
}

std::vector<double> TaskGraph::downstream_path_cycles() const {
  std::vector<std::vector<std::size_t>> successors(nodes.size());
  for (const auto& edge : edges) successors[edge.from].push_back(edge.to);
  const auto order = topological_order();
  std::vector<double> path(nodes.size(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t node = *it;
    double longest = 0.0;
    for (const std::size_t next : successors[node]) {
      longest = std::max(longest, path[next]);
    }
    path[node] = nodes[node].cycles + longest;
  }
  return path;
}

double TaskGraph::critical_path_cycles() const {
  const auto path = downstream_path_cycles();
  double longest = 0.0;
  for (const double p : path) longest = std::max(longest, p);
  return longest;
}

}  // namespace adacheck::sched
