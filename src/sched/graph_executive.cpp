#include "sched/graph_executive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "policy/factory.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace adacheck::sched {

void GraphExecutiveConfig::validate() const {
  if (instances <= 0) {
    throw std::invalid_argument(
        "GraphExecutiveConfig: instances must be > 0");
  }
  if (workers < 1) {
    throw std::invalid_argument("GraphExecutiveConfig: workers must be >= 1");
  }
  if (!is_known_scheduler(scheduler)) {
    throw std::invalid_argument(
        "GraphExecutiveConfig: unknown scheduler \"" + scheduler + "\"");
  }
  costs.validate();
  if (!fault_model.valid()) {
    throw std::invalid_argument("GraphExecutiveConfig: invalid fault model");
  }
  if (speed_ratio <= 1.0) {
    throw std::invalid_argument("GraphExecutiveConfig: speed_ratio <= 1");
  }
}

double GraphScheduleResult::instance_miss_ratio() const {
  if (instances_released == 0) return 0.0;
  return static_cast<double>(instances_missed) /
         static_cast<double>(instances_released);
}

namespace {

/// Same registry names as the flat executive — the handles resolve to
/// the same counters.
struct SchedMetrics {
  obs::Counter& released;
  obs::Counter& completed;
  obs::Counter& missed;
  obs::LatencyHisto& response;

  static SchedMetrics& get() {
    static SchedMetrics* const metrics = new SchedMetrics{
        obs::Registry::instance().counter("sched.jobs_released"),
        obs::Registry::instance().counter("sched.jobs_completed"),
        obs::Registry::instance().counter("sched.jobs_missed"),
        obs::Registry::instance().histogram("sched.job_response_us")};
    return *metrics;
  }
};

enum class NodeState { kWaiting, kReady, kBlocked, kRunning, kDone, kSkipped };

struct InstanceState {
  double release = 0.0;
  double absolute_deadline = 0.0;
  std::vector<int> deps_left;
  std::vector<NodeState> state;
  int nodes_done = 0;
  bool abandoned = false;
};

struct NodeJob : DispatchCandidate {};

struct BlockedJob {
  NodeJob job;
  int worker = 0;
  double dispatch = 0.0;
};

struct RunningJob {
  NodeJob job;
  int worker = 0;
  double dispatch = 0.0;
  double acquire = 0.0;
  double finish = 0.0;
  sim::RunResult run;
};

std::uint64_t micros(double t) {
  return static_cast<std::uint64_t>(std::max(t, 0.0) * 1e6);
}

}  // namespace

GraphScheduleResult run_graph_executive(const TaskGraph& graph,
                                        const GraphExecutiveConfig& config) {
  graph.validate();
  config.validate();

  const std::size_t node_count = graph.nodes.size();
  const double e2e = graph.end_to_end_deadline();
  const auto paths = graph.downstream_path_cycles();
  const auto processor =
      model::DvsProcessor::two_speed(config.speed_ratio, config.voltage);
  const auto scheduler = make_scheduler(config.scheduler);
  const bool telemetry = obs::Registry::instance().enabled();
  const bool tracing = config.trace && obs::Tracer::instance().enabled();

  std::vector<int> indegree(node_count, 0);
  std::vector<std::vector<std::size_t>> successors(node_count);
  for (const auto& edge : graph.edges) {
    successors[edge.from].push_back(edge.to);
    ++indegree[edge.to];
  }

  GraphScheduleResult result;
  result.per_node.resize(node_count);

  std::vector<InstanceState> instances(
      static_cast<std::size_t>(config.instances));
  std::vector<bool> worker_busy(static_cast<std::size_t>(config.workers),
                                false);
  int free_workers = config.workers;
  std::vector<int> available(graph.resources.size());
  for (std::size_t r = 0; r < graph.resources.size(); ++r) {
    available[r] = graph.resources[r].capacity;
  }

  std::vector<NodeJob> ready;
  std::vector<BlockedJob> blocked;
  std::vector<RunningJob> running;
  std::uint64_t sequence = 0;
  int next_instance = 0;
  double now = 0.0;

  const auto policy_order = [&](const DispatchCandidate& a,
                                const DispatchCandidate& b) {
    const double ka = scheduler->priority_key(a, now);
    const double kb = scheduler->priority_key(b, now);
    if (ka != kb) return ka < kb;
    return a.sequence < b.sequence;
  };

  const auto can_acquire = [&](std::size_t node) {
    for (const std::size_t r : graph.nodes[node].resources) {
      if (available[r] < 1) return false;
    }
    return true;
  };
  const auto acquire = [&](std::size_t node) {
    for (const std::size_t r : graph.nodes[node].resources) --available[r];
  };
  const auto release_resources = [&](std::size_t node) {
    for (const std::size_t r : graph.nodes[node].resources) ++available[r];
  };

  const auto skip_node = [&](const NodeJob& job) {
    auto& inst = instances[static_cast<std::size_t>(job.instance)];
    inst.state[job.node] = NodeState::kSkipped;
    ++result.per_node[job.node].skipped;
    ++result.per_node[job.node].missed;
    if (telemetry) SchedMetrics::get().missed.add(1);
  };

  // Late or failed node: the instance cannot meet its end-to-end
  // deadline, so every node not yet done or running is skipped —
  // blocked ones free their workers, ready ones are dropped from the
  // queue.  Running nodes finish normally (non-preemptive lanes).
  const auto abandon_instance = [&](int instance) {
    auto& inst = instances[static_cast<std::size_t>(instance)];
    if (inst.abandoned) return;
    inst.abandoned = true;
    ++result.instances_missed;
    for (std::size_t n = 0; n < node_count; ++n) {
      if (inst.state[n] == NodeState::kWaiting ||
          inst.state[n] == NodeState::kReady) {
        NodeJob job;
        job.node = n;
        job.instance = instance;
        skip_node(job);
      }
    }
    ready.erase(std::remove_if(ready.begin(), ready.end(),
                               [&](const NodeJob& job) {
                                 return job.instance == instance;
                               }),
                ready.end());
    for (auto it = blocked.begin(); it != blocked.end();) {
      if (it->job.instance == instance) {
        skip_node(it->job);
        worker_busy[static_cast<std::size_t>(it->worker)] = false;
        ++free_workers;
        it = blocked.erase(it);
      } else {
        ++it;
      }
    }
  };

  // Runs the node's paper-model job the moment it holds its resources.
  const auto execute = [&](const NodeJob& job, int worker, double dispatch,
                           double acquire_time) {
    const auto& node = graph.nodes[job.node];
    auto& inst = instances[static_cast<std::size_t>(job.instance)];
    inst.state[job.node] = NodeState::kRunning;
    const double blocking = acquire_time - dispatch;
    result.per_node[job.node].blocking_time.add(blocking);
    result.total_blocking += blocking;
    if (tracing && blocking > 0.0) {
      obs::Tracer::instance().complete("blocked:" + node.name, "dag",
                                       micros(dispatch), micros(blocking),
                                       worker);
    }

    const double slack = job.absolute_deadline - acquire_time;
    sim::SimSetup setup{
        model::TaskSpec{node.cycles, std::max(slack, 1e-9), 0.0,
                        node.fault_tolerance, node.name},
        config.costs, processor, config.fault_model, config.environment};
    auto checkpoint_policy = policy::make_policy(node.policy);
    const std::uint64_t seed = util::derive_seed(
        config.seed,
        static_cast<std::uint64_t>(job.instance) * node_count + job.node);
    RunningJob entry;
    entry.job = job;
    entry.worker = worker;
    entry.dispatch = dispatch;
    entry.acquire = acquire_time;
    entry.run = sim::simulate_seeded(setup, *checkpoint_policy, seed);
    entry.finish = acquire_time + entry.run.finish_time;
    running.push_back(std::move(entry));
  };

  // Blocked-node acquisition retries then ready-queue dispatch, both
  // in policy order; the pinned scheduling point after completions and
  // releases at each event time.
  const auto start_work = [&] {
    std::sort(blocked.begin(), blocked.end(),
              [&](const BlockedJob& a, const BlockedJob& b) {
                return policy_order(a.job, b.job);
              });
    for (auto it = blocked.begin(); it != blocked.end();) {
      const double slack = it->job.absolute_deadline - now;
      if (config.skip_late_jobs && slack <= 0.0) {
        skip_node(it->job);
        worker_busy[static_cast<std::size_t>(it->worker)] = false;
        ++free_workers;
        const int instance = it->job.instance;
        blocked.erase(it);
        // abandon_instance erases this instance's remaining blocked
        // entries itself; restart (erase kept the policy order).
        abandon_instance(instance);
        it = blocked.begin();
        continue;
      }
      if (can_acquire(it->job.node)) {
        acquire(it->job.node);
        const BlockedJob entry = *it;
        it = blocked.erase(it);
        execute(entry.job, entry.worker, entry.dispatch, now);
        continue;
      }
      ++it;
    }

    while (free_workers > 0 && !ready.empty()) {
      const auto best =
          std::min_element(ready.begin(), ready.end(), policy_order);
      const NodeJob job = *best;
      ready.erase(best);
      const double slack = job.absolute_deadline - now;
      if (config.skip_late_jobs && slack <= 0.0) {
        skip_node(job);
        abandon_instance(job.instance);
        continue;
      }
      int worker = 0;
      while (worker_busy[static_cast<std::size_t>(worker)]) ++worker;
      worker_busy[static_cast<std::size_t>(worker)] = true;
      --free_workers;
      if (can_acquire(job.node)) {
        acquire(job.node);
        execute(job, worker, now, now);
      } else {
        // Mark kBlocked so abandon_instance's waiting/ready sweep does
        // not also count it — the blocked list is its single owner.
        instances[static_cast<std::size_t>(job.instance)].state[job.node] =
            NodeState::kBlocked;
        blocked.push_back({job, worker, now});
      }
    }
  };

  const auto admit_releases = [&] {
    while (next_instance < config.instances &&
           static_cast<double>(next_instance) * graph.period <= now) {
      auto& inst = instances[static_cast<std::size_t>(next_instance)];
      inst.release = static_cast<double>(next_instance) * graph.period;
      inst.absolute_deadline = inst.release + e2e;
      inst.deps_left = indegree;
      inst.state.assign(node_count, NodeState::kWaiting);
      ++result.instances_released;
      for (std::size_t n = 0; n < node_count; ++n) {
        ++result.per_node[n].released;
        if (telemetry) SchedMetrics::get().released.add(1);
        if (indegree[n] == 0) {
          NodeJob job;
          job.node = n;
          job.instance = next_instance;
          job.release = inst.release;
          job.ready_time = inst.release;
          job.absolute_deadline = inst.absolute_deadline;
          job.remaining_path = paths[n];
          job.sequence = sequence++;
          inst.state[n] = NodeState::kReady;
          ready.push_back(job);
        }
      }
      ++next_instance;
    }
  };

  // Completions at exactly `now`, in worker-index order (the only
  // deterministic order available once finishes tie).
  const auto complete_finished = [&] {
    std::vector<std::size_t> done;
    for (std::size_t i = 0; i < running.size(); ++i) {
      if (running[i].finish <= now) done.push_back(i);
    }
    std::sort(done.begin(), done.end(), [&](std::size_t a, std::size_t b) {
      return running[a].worker < running[b].worker;
    });
    std::vector<RunningJob> finished;
    finished.reserve(done.size());
    for (const std::size_t i : done) {
      finished.push_back(std::move(running[i]));
    }
    for (auto it = done.rbegin(); it != done.rend(); ++it) {
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    for (const auto& entry : finished) {
      const NodeJob& job = entry.job;
      auto& inst = instances[static_cast<std::size_t>(job.instance)];
      auto& stats = result.per_node[job.node];
      worker_busy[static_cast<std::size_t>(entry.worker)] = false;
      ++free_workers;
      release_resources(job.node);
      inst.state[job.node] = NodeState::kDone;

      stats.energy += entry.run.energy;
      result.total_energy += entry.run.energy;
      result.busy_time += entry.run.finish_time;
      result.total_faults += entry.run.faults;
      result.total_rollbacks += entry.run.rollbacks;
      result.total_corrections += entry.run.corrections;
      result.makespan = std::max(result.makespan, entry.finish);
      if (tracing) {
        obs::Tracer::instance().complete(
            graph.nodes[job.node].name + "#" + std::to_string(job.instance),
            "dag", micros(entry.acquire), micros(entry.run.finish_time),
            entry.worker);
      }

      if (entry.run.completed()) {
        ++stats.completed;
        const double response = entry.finish - inst.release;
        stats.response_time.add(response);
        if (telemetry) {
          SchedMetrics::get().completed.add(1);
          SchedMetrics::get().response.record(micros(response));
        }
        if (!inst.abandoned) {
          ++inst.nodes_done;
          for (const std::size_t next : successors[job.node]) {
            if (--inst.deps_left[next] == 0 &&
                inst.state[next] == NodeState::kWaiting) {
              NodeJob child;
              child.node = next;
              child.instance = job.instance;
              child.release = inst.release;
              child.ready_time = now;
              child.absolute_deadline = inst.absolute_deadline;
              child.remaining_path = paths[next];
              child.sequence = sequence++;
              inst.state[next] = NodeState::kReady;
              ready.push_back(child);
            }
          }
          if (inst.nodes_done == static_cast<int>(node_count)) {
            ++result.instances_completed;
            result.end_to_end.add(entry.finish - inst.release);
          }
        }
      } else {
        ++stats.missed;
        if (telemetry) SchedMetrics::get().missed.add(1);
        abandon_instance(job.instance);
      }
    }
  };

  for (;;) {
    admit_releases();
    start_work();

    double next_event = std::numeric_limits<double>::infinity();
    for (const auto& entry : running) {
      next_event = std::min(next_event, entry.finish);
    }
    if (next_instance < config.instances) {
      next_event = std::min(
          next_event, static_cast<double>(next_instance) * graph.period);
    }
    if (!std::isfinite(next_event)) break;
    now = std::max(now, next_event);
    complete_finished();
  }

  return result;
}

}  // namespace adacheck::sched
