// Multi-worker executive over periodic DAG releases.
//
// A whole TaskGraph instance is released every period with one
// end-to-end deadline; nodes become dispatchable when their
// predecessors complete and are placed on `workers` identical lanes by
// a scheduler policy (sched/scheduler.hpp).  A dispatched node first
// acquires its declared shared resources all-or-nothing — while it
// waits it HOLDS its worker (head-of-line blocking, the behavior of a
// non-preemptive lane that cannot context-switch mid-acquisition) and
// the wait is accounted as blocking time, separate from execution.
// Once running, the node is one paper-model job simulated under its
// checkpointing policy with deadline = remaining slack to the
// instance's absolute deadline.
//
// Pinned semantics (tests depend on these):
//  * Event order at each time point: completions (worker-index order)
//    -> instance releases -> blocked-node acquisition retries (policy
//    order) -> dispatch of ready nodes to the lowest-index free
//    workers (policy order).  All policy ties break on admission
//    sequence, so a schedule is a pure function of (graph, config).
//  * Resources are held only while a node runs, and released at its
//    completion: acquisition is deadlock-free by construction.
//  * skip_late_jobs is checked at dispatch and again at every
//    acquisition retry; a late or failed node abandons its whole
//    instance — remaining nodes are skipped and counted missed, nodes
//    already running finish normally.
//  * Node job seed = derive_seed(config.seed, instance * nodes + node):
//    independent of the scheduler, so policy comparisons on the same
//    seed see paired fault draws.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/checkpoint.hpp"
#include "model/fault.hpp"
#include "model/fault_env.hpp"
#include "model/speed.hpp"
#include "sched/scheduler.hpp"
#include "sched/task_graph.hpp"
#include "util/statistics.hpp"

namespace adacheck::sched {

struct GraphExecutiveConfig {
  int instances = 1;           ///< periodic releases to simulate
  std::uint64_t seed = 0x5EED;
  bool skip_late_jobs = true;
  int workers = 1;             ///< identical non-preemptive lanes
  std::string scheduler = "edf";  ///< dispatch-order registry name
  model::CheckpointCosts costs;
  model::FaultModel fault_model;
  model::FaultEnvironment environment;
  double speed_ratio = 2.0;    ///< platform f2/f1
  model::VoltageLaw voltage;
  /// Emit simulated-time execution/blocking spans to the obs tracer
  /// (tid = worker lane, timestamps = simulation clock in micros).
  bool trace = false;

  void validate() const;
};

struct GraphNodeStats {
  int released = 0;
  int completed = 0;
  int missed = 0;   ///< includes skipped
  int skipped = 0;  ///< abandoned without executing
  util::RunningStats response_time;  ///< finish - instance release
  util::RunningStats blocking_time;  ///< acquire - dispatch, executed nodes
  double energy = 0.0;
};

struct GraphScheduleResult {
  int instances_released = 0;
  int instances_completed = 0;  ///< every node done by the deadline
  int instances_missed = 0;     ///< abandoned (late or failed node)
  std::vector<GraphNodeStats> per_node;  ///< indexed like graph.nodes
  util::RunningStats end_to_end;  ///< finish - release, completed instances
  double total_energy = 0.0;
  double total_blocking = 0.0;
  double busy_time = 0.0;   ///< summed node execution time (all lanes)
  double makespan = 0.0;    ///< latest node finish
  long long total_faults = 0;
  long long total_rollbacks = 0;
  long long total_corrections = 0;

  double instance_miss_ratio() const;
};

/// Simulates `config.instances` periodic releases of the graph.
GraphScheduleResult run_graph_executive(const TaskGraph& graph,
                                        const GraphExecutiveConfig& config);

}  // namespace adacheck::sched
