// Non-preemptive executive over a periodic task set.
//
// Runs a periodic task set on one DMR (or TMR) platform: jobs are
// released on their periods, queued, and dispatched by a pluggable
// scheduler policy (sched/scheduler.hpp; the default "edf" is
// earliest-absolute-deadline-first, bit-identical to the pre-registry
// hardwired dispatch); each dispatched job executes under its task's
// checkpointing policy via the simulation engine, with the job
// deadline equal to the time remaining until its absolute deadline at
// dispatch.  Non-preemptive executives are the common shape of
// safety-kernel cyclic executives in the paper's application domain;
// full preemption would require checkpoint-state virtualization the
// paper does not model.
//
// Jobs whose absolute deadline has already passed when they reach the
// head of the queue are abandoned immediately (counted as misses, cost
// nothing) when `skip_late_jobs` is set — otherwise they are started
// and fail inside the engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "sched/taskset.hpp"
#include "sim/engine.hpp"
#include "util/statistics.hpp"

namespace adacheck::sched {

struct ExecutiveConfig {
  double horizon = 0.0;        ///< simulate releases in [0, horizon)
  std::uint64_t seed = 0x5EED;
  bool skip_late_jobs = true;
  /// Dispatch-order registry name (see sched/scheduler.hpp).
  std::string scheduler = "edf";
  model::CheckpointCosts costs;
  model::FaultModel fault_model;
  double speed_ratio = 2.0;    ///< platform f2/f1
  model::VoltageLaw voltage;

  void validate() const;
};

/// One job's fate.
struct JobRecord {
  std::size_t task_index = 0;
  int job_index = 0;          ///< per-task release counter
  double release = 0.0;
  double absolute_deadline = 0.0;
  double start = 0.0;         ///< dispatch time (== finish for skipped)
  double finish = 0.0;
  sim::RunOutcome outcome = sim::RunOutcome::kDeadlineMiss;
  bool skipped = false;       ///< abandoned before starting
  double energy = 0.0;
  int faults = 0;
};

struct TaskStats {
  int released = 0;
  int completed = 0;
  int missed = 0;   ///< includes skipped and aborted
  int skipped = 0;
  util::RunningStats response_time;  ///< finish - release, completed jobs
  double energy = 0.0;
};

struct ScheduleResult {
  std::vector<JobRecord> jobs;      ///< in completion order
  std::vector<TaskStats> per_task;  ///< indexed like TaskSet::tasks
  double busy_time = 0.0;
  double total_energy = 0.0;

  double miss_ratio(std::size_t task) const;
};

/// Simulates the executive over [0, horizon).
ScheduleResult run_executive(const TaskSet& set,
                             const ExecutiveConfig& config);

}  // namespace adacheck::sched
