#include "sched/executive.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "policy/factory.hpp"
#include "util/rng.hpp"

namespace adacheck::sched {

void ExecutiveConfig::validate() const {
  if (horizon <= 0.0)
    throw std::invalid_argument("ExecutiveConfig: horizon must be > 0");
  costs.validate();
  if (!fault_model.valid())
    throw std::invalid_argument("ExecutiveConfig: invalid fault model");
  if (speed_ratio <= 1.0)
    throw std::invalid_argument("ExecutiveConfig: speed_ratio <= 1");
}

double ScheduleResult::miss_ratio(std::size_t task) const {
  const auto& stats = per_task.at(task);
  if (stats.released == 0) return 0.0;
  return static_cast<double>(stats.missed) /
         static_cast<double>(stats.released);
}

namespace {

struct PendingJob {
  std::size_t task_index;
  int job_index;
  double release;
  double absolute_deadline;
};

/// EDF order: earliest absolute deadline first (FIFO on ties via
/// release, then task index for determinism).
struct EdfLater {
  bool operator()(const PendingJob& a, const PendingJob& b) const {
    if (a.absolute_deadline != b.absolute_deadline) {
      return a.absolute_deadline > b.absolute_deadline;
    }
    if (a.release != b.release) return a.release > b.release;
    return a.task_index > b.task_index;
  }
};

}  // namespace

ScheduleResult run_executive(const TaskSet& set,
                             const ExecutiveConfig& config) {
  set.validate();
  config.validate();

  // All releases inside the horizon, fed to the queue in time order.
  std::vector<PendingJob> releases;
  for (std::size_t t = 0; t < set.tasks.size(); ++t) {
    const auto& task = set.tasks[t];
    int index = 0;
    for (double r = task.phase; r < config.horizon; r += task.period) {
      releases.push_back({t, index++, r, r + task.deadline()});
    }
  }
  std::sort(releases.begin(), releases.end(),
            [](const PendingJob& a, const PendingJob& b) {
              if (a.release != b.release) return a.release < b.release;
              return a.task_index < b.task_index;
            });

  ScheduleResult result;
  result.per_task.resize(set.tasks.size());
  const auto processor =
      model::DvsProcessor::two_speed(config.speed_ratio, config.voltage);

  std::priority_queue<PendingJob, std::vector<PendingJob>, EdfLater> ready;
  std::size_t next_release = 0;
  double now = 0.0;
  std::uint64_t job_counter = 0;

  const auto admit_released = [&](double until) {
    while (next_release < releases.size() &&
           releases[next_release].release <= until) {
      ready.push(releases[next_release]);
      ++result.per_task[releases[next_release].task_index].released;
      ++next_release;
    }
  };

  for (;;) {
    admit_released(now);
    if (ready.empty()) {
      if (next_release >= releases.size()) break;  // drained
      now = std::max(now, releases[next_release].release);
      continue;
    }
    const PendingJob job = ready.top();
    ready.pop();
    const auto& task = set.tasks[job.task_index];
    auto& stats = result.per_task[job.task_index];

    JobRecord record;
    record.task_index = job.task_index;
    record.job_index = job.job_index;
    record.release = job.release;
    record.absolute_deadline = job.absolute_deadline;
    record.start = now;

    const double slack = job.absolute_deadline - now;
    if (config.skip_late_jobs && slack <= 0.0) {
      record.skipped = true;
      record.finish = now;
      ++stats.missed;
      ++stats.skipped;
      result.jobs.push_back(record);
      continue;
    }

    // Execute the job under its policy.  The engine's clock is job
    // local; its deadline is the remaining slack (non-positive slack
    // handled above, or clamped to a token value when skipping is off).
    sim::SimSetup setup{
        model::TaskSpec{task.cycles, std::max(slack, 1e-9), 0.0,
                        task.fault_tolerance, task.name},
        config.costs, processor, config.fault_model};
    auto policy = policy::make_policy(task.policy);
    const auto run = sim::simulate_seeded(
        setup, *policy, util::derive_seed(config.seed, job_counter++));

    record.finish = now + run.finish_time;
    record.outcome = run.outcome;
    record.energy = run.energy;
    record.faults = run.faults;
    result.jobs.push_back(record);

    result.total_energy += run.energy;
    stats.energy += run.energy;
    result.busy_time += run.finish_time;
    if (run.completed()) {
      ++stats.completed;
      stats.response_time.add(record.finish - record.release);
    } else {
      ++stats.missed;
    }
    now = record.finish;
  }

  return result;
}

}  // namespace adacheck::sched
