#include "sched/executive.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/registry.hpp"
#include "policy/factory.hpp"
#include "util/rng.hpp"

namespace adacheck::sched {

void ExecutiveConfig::validate() const {
  if (horizon <= 0.0)
    throw std::invalid_argument("ExecutiveConfig: horizon must be > 0");
  if (!is_known_scheduler(scheduler)) {
    throw std::invalid_argument("ExecutiveConfig: unknown scheduler \"" +
                                scheduler + "\"");
  }
  costs.validate();
  if (!fault_model.valid())
    throw std::invalid_argument("ExecutiveConfig: invalid fault model");
  if (speed_ratio <= 1.0)
    throw std::invalid_argument("ExecutiveConfig: speed_ratio <= 1");
}

double ScheduleResult::miss_ratio(std::size_t task) const {
  const auto& stats = per_task.at(task);
  if (stats.released == 0) return 0.0;
  return static_cast<double>(stats.missed) /
         static_cast<double>(stats.released);
}

namespace {

/// Telemetry handles shared with the graph executive (same registry
/// names resolve to the same counters); gated on Registry::enabled().
struct SchedMetrics {
  obs::Counter& released;
  obs::Counter& completed;
  obs::Counter& missed;
  obs::LatencyHisto& response;

  static SchedMetrics& get() {
    static SchedMetrics* const metrics = new SchedMetrics{
        obs::Registry::instance().counter("sched.jobs_released"),
        obs::Registry::instance().counter("sched.jobs_completed"),
        obs::Registry::instance().counter("sched.jobs_missed"),
        obs::Registry::instance().histogram("sched.job_response_us")};
    return *metrics;
  }
};

}  // namespace

ScheduleResult run_executive(const TaskSet& set,
                             const ExecutiveConfig& config) {
  set.validate();
  config.validate();

  // All releases inside the horizon, admitted in (release, task) order
  // — admission order is the sequence number every policy tie-breaks
  // on, so "edf" reproduces the pre-registry (deadline, release, task)
  // dispatch exactly.
  struct PendingJob : DispatchCandidate {
    int job_index = 0;
  };
  std::vector<PendingJob> releases;
  for (std::size_t t = 0; t < set.tasks.size(); ++t) {
    const auto& task = set.tasks[t];
    int index = 0;
    for (double r = task.phase; r < config.horizon; r += task.period) {
      PendingJob job;
      job.node = t;
      job.instance = index;
      job.job_index = index++;
      job.release = r;
      job.ready_time = r;
      job.absolute_deadline = r + task.deadline();
      job.remaining_path = task.cycles;
      releases.push_back(job);
    }
  }
  std::sort(releases.begin(), releases.end(),
            [](const PendingJob& a, const PendingJob& b) {
              if (a.release != b.release) return a.release < b.release;
              return a.node < b.node;
            });
  for (std::size_t i = 0; i < releases.size(); ++i) {
    releases[i].sequence = static_cast<std::uint64_t>(i);
  }

  ScheduleResult result;
  result.per_task.resize(set.tasks.size());
  const auto processor =
      model::DvsProcessor::two_speed(config.speed_ratio, config.voltage);
  const auto scheduler = make_scheduler(config.scheduler);
  const bool telemetry = obs::Registry::instance().enabled();

  std::vector<PendingJob> ready;
  std::size_t next_release = 0;
  double now = 0.0;
  std::uint64_t job_counter = 0;

  const auto admit_released = [&](double until) {
    while (next_release < releases.size() &&
           releases[next_release].release <= until) {
      ready.push_back(releases[next_release]);
      ++result.per_task[releases[next_release].node].released;
      if (telemetry) SchedMetrics::get().released.add(1);
      ++next_release;
    }
  };

  for (;;) {
    admit_released(now);
    if (ready.empty()) {
      if (next_release >= releases.size()) break;  // drained
      now = std::max(now, releases[next_release].release);
      continue;
    }
    // Dispatch the policy's pick: lowest (key, sequence).
    auto best = ready.begin();
    double best_key = scheduler->priority_key(*best, now);
    for (auto it = std::next(ready.begin()); it != ready.end(); ++it) {
      const double key = scheduler->priority_key(*it, now);
      if (key < best_key ||
          (key == best_key && it->sequence < best->sequence)) {
        best = it;
        best_key = key;
      }
    }
    const PendingJob job = *best;
    ready.erase(best);
    const auto& task = set.tasks[job.node];
    auto& stats = result.per_task[job.node];

    JobRecord record;
    record.task_index = job.node;
    record.job_index = job.job_index;
    record.release = job.release;
    record.absolute_deadline = job.absolute_deadline;
    record.start = now;

    const double slack = job.absolute_deadline - now;
    if (config.skip_late_jobs && slack <= 0.0) {
      record.skipped = true;
      record.finish = now;
      ++stats.missed;
      ++stats.skipped;
      if (telemetry) SchedMetrics::get().missed.add(1);
      result.jobs.push_back(record);
      continue;
    }

    // Execute the job under its policy.  The engine's clock is job
    // local; its deadline is the remaining slack (non-positive slack
    // handled above, or clamped to a token value when skipping is off).
    sim::SimSetup setup{
        model::TaskSpec{task.cycles, std::max(slack, 1e-9), 0.0,
                        task.fault_tolerance, task.name},
        config.costs, processor, config.fault_model};
    auto policy = policy::make_policy(task.policy);
    const auto run = sim::simulate_seeded(
        setup, *policy, util::derive_seed(config.seed, job_counter++));

    record.finish = now + run.finish_time;
    record.outcome = run.outcome;
    record.energy = run.energy;
    record.faults = run.faults;
    result.jobs.push_back(record);

    result.total_energy += run.energy;
    stats.energy += run.energy;
    result.busy_time += run.finish_time;
    if (run.completed()) {
      ++stats.completed;
      stats.response_time.add(record.finish - record.release);
      if (telemetry) {
        SchedMetrics::get().completed.add(1);
        SchedMetrics::get().response.record(static_cast<std::uint64_t>(
            (record.finish - record.release) * 1e6));
      }
    } else {
      ++stats.missed;
      if (telemetry) SchedMetrics::get().missed.add(1);
    }
    now = record.finish;
  }

  return result;
}

}  // namespace adacheck::sched
